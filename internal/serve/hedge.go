package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Client-side hedging against ONE server across TWO connections — the
// single-server analogue of the cluster coordinator's cross-worker
// hedging (cluster.attemptHedged). The failure this buys out of is not
// a dead server but a dead or degraded CONNECTION: a response frame
// torn by wire chaos, a stalled socket buffer, or a head-of-line batch
// monopolizing one connection's writer. The two connections are
// independent TCP streams (and independently negotiated, so they hedge
// identically over binary or JSON framing); a request that has not
// answered within HedgeAfter is duplicated on the second connection
// and the first success wins.
//
// Scans are idempotent reads, so duplicating one is semantically free;
// the costs are the duplicate's server work and the arena discipline:
// a duplicate SUCCESS carries an arena-backed result that must be
// recycled, and a still-running loser is reading the caller's payload,
// which the caller is entitled to reuse the moment we return. Both are
// paid in one place: the winner reels the loser in (cancel + drain)
// before returning — never leaving a goroutine behind that touches the
// payload, mirroring the coordinator's rule.

// HedgedClient wraps two Clients dialed to the same address. Safe for
// concurrent use, like Client. Zero value is not usable; dial with
// DialHedged.
type HedgedClient struct {
	primary    *Client
	secondary  *Client
	hedgeAfter time.Duration

	hedges    atomic.Uint64 // duplicates launched
	hedgeWins atomic.Uint64 // races the duplicate won
}

// HedgeStats is a snapshot of a HedgedClient's counters.
type HedgeStats struct {
	Hedges    uint64 // duplicate requests launched
	HedgeWins uint64 // races won by the duplicate
}

// DefaultHedgeAfter is the hedge trigger when DialHedged is given a
// non-positive one: long enough that a healthy round trip answers
// first (loopback scans run well under a millisecond), short enough to
// matter against a multi-second stall.
const DefaultHedgeAfter = 20 * time.Millisecond

// DialHedged opens two connections to addr with the given protocol
// (ProtoJSON, ProtoBin, or empty for JSON) and hedges any scan still
// unanswered after hedgeAfter (non-positive means DefaultHedgeAfter).
func DialHedged(addr, proto string, hedgeAfter time.Duration) (*HedgedClient, error) {
	if hedgeAfter <= 0 {
		hedgeAfter = DefaultHedgeAfter
	}
	primary, err := DialMaxLineProto(addr, DefaultMaxLineBytes, proto)
	if err != nil {
		return nil, err
	}
	secondary, err := DialMaxLineProto(addr, DefaultMaxLineBytes, proto)
	if err != nil {
		primary.Close()
		return nil, err
	}
	return &HedgedClient{primary: primary, secondary: secondary, hedgeAfter: hedgeAfter}, nil
}

// Close tears down both connections; outstanding scans fail.
func (h *HedgedClient) Close() error {
	err := h.primary.Close()
	if serr := h.secondary.Close(); err == nil {
		err = serr
	}
	return err
}

// Stats snapshots the hedge counters.
func (h *HedgedClient) Stats() HedgeStats {
	return HedgeStats{Hedges: h.hedges.Load(), HedgeWins: h.hedgeWins.Load()}
}

// Scan is Client.Scan with hedging.
func (h *HedgedClient) Scan(op, kind, dir string, data []int64) ([]int64, error) {
	return h.ScanCtx(context.Background(), op, kind, dir, data)
}

// ScanCtx is Client.ScanCtx with hedging: if the primary connection
// has not answered within HedgeAfter (or fails outright with a
// connection-level error), the request is duplicated on the secondary
// and the first success wins. Request-level rejections (bad_request,
// overloaded, ...) are NOT hedged — the duplicate would hit the same
// server and be rejected the same way, so they fail fast.
func (h *HedgedClient) ScanCtx(ctx context.Context, op, kind, dir string, data []int64) ([]int64, error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel() // reels in the loser
	type result struct {
		res   []int64
		err   error
		hedge bool
	}
	ch := make(chan result, 2)
	launch := func(c *Client, hedge bool) {
		go func() {
			r, e := c.ScanCtx(actx, op, kind, dir, data)
			ch <- result{r, e, hedge}
		}()
	}
	launch(h.primary, false)
	timer := time.NewTimer(h.hedgeAfter)
	defer timer.Stop()
	inflight, hedged := 1, false
	var primaryErr error
	for {
		select {
		case <-timer.C:
			if !hedged {
				hedged = true
				h.hedges.Add(1)
				inflight++
				launch(h.secondary, true)
			}
		case r := <-ch:
			inflight--
			if r.err == nil {
				if r.hedge {
					h.hedgeWins.Add(1)
				}
				// Reel the loser in BEFORE returning: its round trip is
				// still reading data, which the caller may recycle the
				// moment we return — and a duplicate success carries an
				// arena-backed result that must circulate, not leak.
				cancel()
				for ; inflight > 0; inflight-- {
					lr := <-ch
					releaseData(lr.res)
				}
				return r.res, nil
			}
			if !r.hedge {
				primaryErr = r.err
			}
			// A typed request-level rejection is the server's verdict on
			// this request, delivered over a healthy connection; the
			// duplicate hits the same server and gets the same answer, so
			// fail fast instead of racing or waiting it out.
			if requestLevel(r.err) {
				cancel()
				for ; inflight > 0; inflight-- {
					lr := <-ch
					releaseData(lr.res)
				}
				return nil, r.err
			}
			// A connection-level failure before the timer fired: promote
			// the hedge immediately rather than waiting out a timer
			// against a connection already known dead.
			if !hedged {
				hedged = true
				h.hedges.Add(1)
				inflight++
				launch(h.secondary, true)
			}
			if inflight == 0 {
				if primaryErr != nil {
					return nil, primaryErr
				}
				return nil, r.err
			}
		}
	}
}

// requestLevel reports whether err is a server's typed verdict on THIS
// request (same answer guaranteed on a retry or duplicate) rather than
// a transport failure worth racing a second connection against.
func requestLevel(err error) bool {
	for _, sentinel := range []error{
		ErrBadRequest, ErrOverloaded, ErrShed, ErrNoStream,
		ErrStreamFailed, context.DeadlineExceeded, context.Canceled,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}
