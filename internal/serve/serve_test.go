package serve

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"scans/internal/scan"
)

// directScan computes the expected result of a request with the serial
// kernels from internal/scan — the reference the fused service must
// agree with exactly.
func directScan(spec Spec, data []int64) []int64 {
	dst := make([]int64, len(data))
	var op scan.Op[int64]
	switch spec.Op {
	case OpSum:
		op = scan.Add[int64]{}
	case OpMul:
		op = scan.Mul[int64]{}
	case OpMax:
		op = scan.Max[int64]{Id: math.MinInt64}
	case OpMin:
		op = scan.Min[int64]{Id: math.MaxInt64}
	}
	o := scan.Func[int64]{Id: op.Identity(), F: op.Combine}
	switch {
	case spec.Dir == Forward && spec.Kind == Exclusive:
		scan.Exclusive(o, dst, data)
	case spec.Dir == Forward && spec.Kind == Inclusive:
		scan.Inclusive(o, dst, data)
	case spec.Dir == Backward && spec.Kind == Exclusive:
		scan.ExclusiveBackward(o, dst, data)
	default:
		scan.InclusiveBackward(o, dst, data)
	}
	return dst
}

// allSpecs enumerates every valid (op, kind, dir) combination.
func allSpecs() []Spec {
	var specs []Spec
	for op := Op(0); op < opCount; op++ {
		for k := Kind(0); k < kindCount; k++ {
			for d := Dir(0); d < dirCount; d++ {
				specs = append(specs, Spec{Op: op, Kind: k, Dir: d})
			}
		}
	}
	return specs
}

func randomData(rng *rand.Rand, n int) []int64 {
	d := make([]int64, n)
	for i := range d {
		d[i] = int64(rng.Intn(41) - 20)
	}
	return d
}

func TestSubmitAllSpecsMatchDirect(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	rng := rand.New(rand.NewSource(1))
	for _, spec := range allSpecs() {
		for _, n := range []int{1, 2, 7, 256} {
			data := randomData(rng, n)
			if spec.Op == OpMul {
				// Keep products small: ±1 only.
				for i := range data {
					data[i] = 2*(data[i]&1) - 1
				}
			}
			got, err := s.Submit(spec, data)
			if err != nil {
				t.Fatalf("%v n=%d: Submit: %v", spec, n, err)
			}
			if want := directScan(spec, data); !reflect.DeepEqual(got, want) {
				t.Fatalf("%v n=%d: served scan = %v, want %v", spec, n, got, want)
			}
		}
	}
}

func TestConcurrentSubmittersFuseCorrectly(t *testing.T) {
	// Many goroutines × many requests of mixed flavors: every result
	// must still match the serial reference even though requests fuse
	// into shared batches. Run under -race this also checks the whole
	// submit/batch/execute/deliver pipeline for data races.
	s := New(Config{MaxWait: 200 * time.Microsecond, QueueLimit: 1 << 14})
	defer s.Close()
	specs := allSpecs()
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				spec := specs[rng.Intn(len(specs))]
				data := randomData(rng, 1+rng.Intn(64))
				if spec.Op == OpMul {
					for j := range data {
						data[j] = 2*(data[j]&1) - 1
					}
				}
				got, err := s.Submit(spec, data)
				if errors.Is(err, ErrOverloaded) {
					// Legal under load; retry.
					i--
					time.Sleep(time.Millisecond)
					continue
				}
				if err != nil {
					errs <- err
					return
				}
				if want := directScan(spec, data); !reflect.DeepEqual(got, want) {
					errs <- errors.New("fused result differs from direct kernel for " + spec.String())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Requests == 0 || st.Batches == 0 {
		t.Fatalf("no traffic recorded: %v", st)
	}
}

func TestBatchingFusesConcurrentRequests(t *testing.T) {
	// Submit K requests asynchronously before waiting on any future:
	// with a fill target of K and a generous window they must fuse
	// into exactly one batch.
	const K = 100
	s := New(Config{MinBatchRequests: K, MaxWait: time.Second, QueueLimit: 1024})
	defer s.Close()
	data := []int64{1, 2, 3, 4}
	futures := make([]*Future, K)
	for i := range futures {
		f, err := s.SubmitAsync(Spec{Op: OpSum}, data)
		if err != nil {
			t.Fatalf("SubmitAsync %d: %v", i, err)
		}
		futures[i] = f
	}
	want := directScan(Spec{Op: OpSum}, data)
	for i, f := range futures {
		got, err := f.Wait()
		if err != nil {
			t.Fatalf("Wait %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("request %d: got %v, want %v", i, got, want)
		}
	}
	st := s.Stats()
	if st.Requests != K {
		t.Fatalf("Requests = %d, want %d", st.Requests, K)
	}
	if st.Batches != 1 {
		t.Fatalf("Batches = %d for %d concurrent requests below the fill target, want 1", st.Batches, K)
	}
	if st.FusedElements != K*uint64(len(data)) {
		t.Fatalf("FusedElements = %d, want %d", st.FusedElements, K*len(data))
	}
	if st.MaxOccupancy != K {
		t.Fatalf("MaxOccupancy = %d, want %d", st.MaxOccupancy, K)
	}
	if st.P50Occupancy < K/2 {
		t.Fatalf("P50Occupancy = %d, want the %d-occupancy bucket", st.P50Occupancy, K)
	}
}

func TestLoneRequestFlushesAfterWindow(t *testing.T) {
	// A single request below the fill target must still be served once
	// MaxWait expires — the window bounds latency, it never strands.
	s := New(Config{MinBatchRequests: 8, MaxWait: 2 * time.Millisecond})
	defer s.Close()
	start := time.Now()
	got, err := s.Submit(Spec{Op: OpSum, Kind: Inclusive}, []int64{4, 5})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if want := []int64{4, 9}; !reflect.DeepEqual(got, want) {
		t.Fatalf("lone request = %v, want %v", got, want)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("lone request took %v, window is not bounding latency", waited)
	}
}

func TestBatchElemCapFlushes(t *testing.T) {
	// With MaxBatchElems tiny, a burst must split into multiple batches
	// rather than one oversized batch, even with a huge fill target.
	s := New(Config{MaxBatchElems: 8, MinBatchRequests: 64, MaxWait: 10 * time.Millisecond, QueueLimit: 1024})
	defer s.Close()
	const K = 64
	futures := make([]*Future, K)
	for i := range futures {
		f, err := s.SubmitAsync(Spec{Op: OpSum}, []int64{1, 1, 1, 1})
		if err != nil {
			t.Fatalf("SubmitAsync: %v", err)
		}
		futures[i] = f
	}
	for _, f := range futures {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Batches < K/4 {
		t.Fatalf("Batches = %d; MaxBatchElems=8 with 4-element requests should force ~%d batches", st.Batches, K/2)
	}
}

func TestBackpressureOverloaded(t *testing.T) {
	// A stopped server drains nothing, so the queue fills after exactly
	// QueueLimit submissions and further ones reject with ErrOverloaded.
	s := newStopped(Config{QueueLimit: 4})
	data := []int64{1}
	for i := 0; i < 4; i++ {
		if _, err := s.SubmitAsync(Spec{Op: OpSum}, data); err != nil {
			t.Fatalf("SubmitAsync %d within queue limit: %v", i, err)
		}
	}
	if _, err := s.SubmitAsync(Spec{Op: OpSum}, data); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-limit SubmitAsync error = %v, want ErrOverloaded", err)
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
	// Start the loops: the queued futures must all drain and resolve.
	s.start()
	s.Close()
	if got, want := s.Stats().Requests, uint64(4); got != want {
		t.Fatalf("Requests = %d, want %d", got, want)
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	s := New(Config{MaxWait: 20 * time.Millisecond})
	futures := make([]*Future, 50)
	for i := range futures {
		f, err := s.SubmitAsync(Spec{Op: OpSum, Kind: Inclusive}, []int64{int64(i), 1})
		if err != nil {
			t.Fatalf("SubmitAsync: %v", err)
		}
		futures[i] = f
	}
	// Close before waiting on anything: every accepted future must
	// still resolve (drain), and new submissions must be refused.
	s.Close()
	for i, f := range futures {
		got, err := f.Wait()
		if err != nil {
			t.Fatalf("future %d after Close: %v", i, err)
		}
		if want := []int64{int64(i), int64(i) + 1}; !reflect.DeepEqual(got, want) {
			t.Fatalf("future %d = %v, want %v", i, got, want)
		}
	}
	if _, err := s.Submit(Spec{Op: OpSum}, []int64{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	s.Close()
}

func TestCloseRacesWithSubmitters(t *testing.T) {
	// Submitters hammering a server while it closes must each see
	// either a served result or ErrClosed/ErrOverloaded — never a hang
	// or a race (-race covers the latter).
	s := New(Config{QueueLimit: 64})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				_, err := s.Submit(Spec{Op: OpSum}, []int64{1, 2, 3})
				if errors.Is(err, ErrClosed) {
					return
				}
				if err != nil && !errors.Is(err, ErrOverloaded) {
					panic(err)
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	s.Close()
	wg.Wait()
}

func TestEmptyAndInvalidRequests(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	got, err := s.Submit(Spec{Op: OpMax}, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty request = (%v, %v), want ([], nil)", got, err)
	}
	if _, err := s.Submit(Spec{Op: opCount}, []int64{1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("invalid op error = %v, want ErrBadRequest", err)
	}
}

func TestUnfusedConfigServesEveryRequestAlone(t *testing.T) {
	// MaxBatchRequests=1 is the unfused baseline: batches == requests.
	s := New(Config{MaxBatchRequests: 1, QueueLimit: 256})
	const K = 32
	futures := make([]*Future, K)
	for i := range futures {
		f, err := s.SubmitAsync(Spec{Op: OpSum}, []int64{1, 2})
		if err != nil {
			t.Fatalf("SubmitAsync: %v", err)
		}
		futures[i] = f
	}
	for _, f := range futures {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	st := s.Stats()
	if st.Batches != K {
		t.Fatalf("unfused Batches = %d, want %d", st.Batches, K)
	}
	if st.P99Occupancy != 1 || st.MaxOccupancy != 1 {
		t.Fatalf("unfused occupancy p99=%d max=%d, want 1/1", st.P99Occupancy, st.MaxOccupancy)
	}
}

func TestStatsPercentiles(t *testing.T) {
	s := &Server{}
	// 99 singleton batches and one 100-request batch: p50 stays in the
	// singleton bucket, p99 reaches the big one.
	for i := 0; i < 99; i++ {
		s.stats.record(1, 1, 1)
	}
	s.stats.record(100, 1, 100)
	snap := s.Stats()
	if snap.P50Occupancy != 1 {
		t.Errorf("P50Occupancy = %d, want 1", snap.P50Occupancy)
	}
	if snap.P99Occupancy < 64 {
		t.Errorf("P99Occupancy = %d, want the 100-occupancy bucket (>= 64)", snap.P99Occupancy)
	}
	if snap.MaxOccupancy != 100 {
		t.Errorf("MaxOccupancy = %d, want 100", snap.MaxOccupancy)
	}
	if snap.String() == "" {
		t.Error("Stats.String empty")
	}
}

func TestSpecStrings(t *testing.T) {
	s := Spec{Op: OpMax, Kind: Inclusive, Dir: Backward}
	if got, want := s.String(), "max/inclusive/backward"; got != want {
		t.Errorf("Spec.String = %q, want %q", got, want)
	}
	for _, spec := range allSpecs() {
		parsed, err := ParseSpec(spec.Op.String(), spec.Kind.String(), spec.Dir.String())
		if err != nil || parsed != spec {
			t.Errorf("ParseSpec round trip failed for %v: %v %v", spec, parsed, err)
		}
	}
	if _, err := ParseSpec("xor", "", ""); !errors.Is(err, ErrBadRequest) {
		t.Errorf("ParseSpec unknown op error = %v, want ErrBadRequest", err)
	}
	if _, err := ParseSpec("sum", "sideways", ""); !errors.Is(err, ErrBadRequest) {
		t.Errorf("ParseSpec unknown kind error = %v, want ErrBadRequest", err)
	}
	if _, err := ParseSpec("sum", "", "up"); !errors.Is(err, ErrBadRequest) {
		t.Errorf("ParseSpec unknown dir error = %v, want ErrBadRequest", err)
	}
}
