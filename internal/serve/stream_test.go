package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"scans/internal/fault"
)

// fold computes the reference stream total: the op applied across all
// of data (identity for an empty stream).
func fold(op Op, data []int64) int64 {
	acc := Identity(op)
	for _, v := range data {
		acc = Combine(op, acc, v)
	}
	return acc
}

// waitStats polls until cond holds or the deadline hits — for
// assertions about worker-goroutine side effects (TTL expiry, conn
// teardown) that land asynchronously.
func waitStats(t *testing.T, stats func() Stats, cond func(Stats) bool, what string) Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := stats()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; stats: %v", what, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestStreamMatchesOneShot is the core acceptance property: a vector
// split into arbitrary chunks and pushed through a stream yields, chunk
// by chunk, exactly the slices of the one-shot scan — bit-identical,
// for every forward spec — and Close returns the fold of the whole
// vector.
func TestStreamMatchesOneShot(t *testing.T) {
	srv := New(Config{MaxWait: 50 * time.Microsecond})
	defer srv.Close()
	rng := rand.New(rand.NewSource(11))
	for _, spec := range allSpecs() {
		if spec.Dir == Backward {
			continue
		}
		for _, n := range []int{1, 2, 5, 17, 64, 257} {
			data := randomData(rng, n)
			want := directScan(spec, data)
			st, err := srv.OpenStream(spec, "")
			if err != nil {
				t.Fatalf("%v n=%d: OpenStream: %v", spec, n, err)
			}
			var got []int64
			for off := 0; off < n; {
				if rng.Intn(8) == 0 {
					// Empty chunks are no-ops and must not disturb the carry.
					if res, err := st.Push(context.Background(), nil); err != nil || len(res) != 0 {
						t.Fatalf("%v n=%d: empty Push = (%v, %v)", spec, n, res, err)
					}
				}
				sz := 1 + rng.Intn(n-off)
				res, err := st.Push(context.Background(), data[off:off+sz])
				if err != nil {
					t.Fatalf("%v n=%d off=%d: Push: %v", spec, n, off, err)
				}
				got = append(got, res...)
				off += sz
			}
			total, err := st.Close()
			if err != nil {
				t.Fatalf("%v n=%d: Close: %v", spec, n, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v n=%d: streamed = %v, one-shot = %v", spec, n, got, want)
			}
			if wantTotal := fold(spec.Op, data); total != wantTotal {
				t.Fatalf("%v n=%d: total = %d, want %d", spec, n, total, wantTotal)
			}
		}
	}
}

// FuzzStreamedScanMatchesOneShot fuzzes the same property across ops,
// kinds, chunk sizes, and payloads.
func FuzzStreamedScanMatchesOneShot(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(3), []byte{1, 2, 3, 4, 5})
	f.Add(uint8(1), uint8(1), uint8(1), []byte{0xFF, 0x80, 0x7F})
	f.Add(uint8(3), uint8(0), uint8(7), []byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Add(uint8(2), uint8(1), uint8(16), []byte{})
	srv := New(Config{MaxWait: 20 * time.Microsecond})
	f.Cleanup(srv.Close)
	f.Fuzz(func(t *testing.T, opb, kindb, chunkb uint8, raw []byte) {
		spec := Spec{
			Op:   Op(opb % uint8(opCount)),
			Kind: Kind(kindb % uint8(kindCount)),
			Dir:  Forward,
		}
		data := make([]int64, len(raw))
		for i, b := range raw {
			data[i] = int64(int8(b))
		}
		chunk := 1 + int(chunkb%31)
		want := directScan(spec, data)
		st, err := srv.OpenStream(spec, "")
		if err != nil {
			t.Fatalf("OpenStream: %v", err)
		}
		got := []int64{}
		for off := 0; off < len(data); off += chunk {
			end := min(off+chunk, len(data))
			res, err := st.Push(context.Background(), data[off:end])
			if err != nil {
				t.Fatalf("Push at %d: %v", off, err)
			}
			got = append(got, res...)
		}
		total, err := st.Close()
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
		if len(data) > 0 && !reflect.DeepEqual(got, want) {
			t.Fatalf("spec %v chunk %d: streamed %v != one-shot %v (data %v)", spec, chunk, got, want, data)
		}
		if wantTotal := fold(spec.Op, data); total != wantTotal {
			t.Fatalf("spec %v: total = %d, want %d", spec, total, wantTotal)
		}
	})
}

func TestStreamExclusiveCarrySemantics(t *testing.T) {
	// Pinned example: exclusive sum of [1,2,3 | 4,5] streamed in two
	// chunks. Chunk 2's first output is the fold of ALL of chunk 1 (6),
	// not chunk 1's last output (3) — the classic off-by-one an
	// exclusive carry invites. Total includes the final element.
	srv := New(Config{MaxWait: 20 * time.Microsecond})
	defer srv.Close()
	st, err := srv.OpenStream(Spec{Op: OpSum, Kind: Exclusive, Dir: Forward}, "")
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	r1, err := st.Push(context.Background(), []int64{1, 2, 3})
	if err != nil || !reflect.DeepEqual(r1, []int64{0, 1, 3}) {
		t.Fatalf("chunk 1 = (%v, %v), want [0 1 3]", r1, err)
	}
	r2, err := st.Push(context.Background(), []int64{4, 5})
	if err != nil || !reflect.DeepEqual(r2, []int64{6, 10}) {
		t.Fatalf("chunk 2 = (%v, %v), want [6 10]", r2, err)
	}
	total, err := st.Close()
	if err != nil || total != 15 {
		t.Fatalf("total = (%d, %v), want 15", total, err)
	}
}

func TestStreamBackwardRejected(t *testing.T) {
	srv := New(Config{MaxWait: 20 * time.Microsecond})
	defer srv.Close()
	_, err := srv.OpenStream(Spec{Op: OpSum, Kind: Inclusive, Dir: Backward}, "")
	if !errors.Is(err, ErrStreamUnsupported) {
		t.Fatalf("backward OpenStream err = %v, want ErrStreamUnsupported", err)
	}
	// The rejection is a bad-request (not retryable), per the documented
	// contract: a backward carry would depend on chunks not yet arrived.
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("ErrStreamUnsupported must wrap ErrBadRequest, got %v", err)
	}
	if (RetryPolicy{}).Retryable(err) {
		t.Fatal("backward-stream rejection must not be retryable")
	}
}

func TestStreamOpsAfterCloseAndDoubleClose(t *testing.T) {
	srv := New(Config{MaxWait: 20 * time.Microsecond})
	defer srv.Close()
	st, _ := srv.OpenStream(Spec{Op: OpSum}, "")
	if _, err := st.Push(context.Background(), []int64{1}); err != nil {
		t.Fatalf("Push: %v", err)
	}
	if _, err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := st.Push(context.Background(), []int64{2}); !errors.Is(err, ErrNoStream) {
		t.Fatalf("Push after Close = %v, want ErrNoStream", err)
	}
	if _, err := st.Close(); !errors.Is(err, ErrNoStream) {
		t.Fatalf("double Close = %v, want ErrNoStream", err)
	}
}

// TestStreamChunkFailureKillsStream: a chunk that dies to an isolated
// kernel panic reports ErrInternal, and every later operation on the
// stream — including Close — reports ErrStreamFailed; the session's
// state is freed (ledger shows it failed, active back to zero).
func TestStreamChunkFailureKillsStream(t *testing.T) {
	faults := fault.New(1)
	srv := New(Config{MaxWait: 20 * time.Microsecond, Faults: faults})
	defer srv.Close()
	st, err := srv.OpenStream(Spec{Op: OpSum, Kind: Inclusive, Dir: Forward}, "")
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	if _, err := st.Push(context.Background(), []int64{1, 2}); err != nil {
		t.Fatalf("healthy Push: %v", err)
	}
	faults.Arm(fault.KernelPanic, 1)
	if _, err := st.Push(context.Background(), []int64{3}); !errors.Is(err, ErrInternal) {
		t.Fatalf("panicked Push = %v, want ErrInternal", err)
	}
	faults.DisarmAll()
	if _, err := st.Push(context.Background(), []int64{4}); !errors.Is(err, ErrStreamFailed) {
		t.Fatalf("Push after failure = %v, want ErrStreamFailed", err)
	}
	if _, err := st.Close(); !errors.Is(err, ErrStreamFailed) {
		t.Fatalf("Close after failure = %v, want ErrStreamFailed", err)
	}
	stats := srv.Stats()
	if stats.StreamsFailed != 1 || stats.StreamsActive != 0 {
		t.Fatalf("ledger after failure: %v, want failed=1 active=0", stats)
	}
}

func TestClientStreamScanWire(t *testing.T) {
	ns := startNet(t, Config{MaxWait: 50 * time.Microsecond})
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(3))
	for _, kind := range []string{"exclusive", "inclusive"} {
		data := randomData(rng, 1000)
		want := directScan(mustSpec(t, "sum", kind, "forward"), data)
		got, err := c.StreamScan(context.Background(), "sum", kind, "", data, 64)
		if err != nil {
			t.Fatalf("StreamScan(%s): %v", kind, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("StreamScan(%s) diverges from one-shot reference", kind)
		}
	}
	// Explicit session: per-chunk results and the total.
	s, err := c.OpenStream(context.Background(), "max", "inclusive", "")
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	if res, err := s.Send(context.Background(), []int64{3, 9, 2}); err != nil || !reflect.DeepEqual(res, []int64{3, 9, 9}) {
		t.Fatalf("Send 1 = (%v, %v)", res, err)
	}
	if res, err := s.Send(context.Background(), []int64{5, 11}); err != nil || !reflect.DeepEqual(res, []int64{9, 11}) {
		t.Fatalf("Send 2 = (%v, %v)", res, err)
	}
	total, err := s.Close(context.Background())
	if err != nil || total != 11 {
		t.Fatalf("Close = (%d, %v), want 11", total, err)
	}
	if _, err := s.Send(context.Background(), []int64{1}); !errors.Is(err, ErrNoStream) {
		t.Fatalf("Send after Close = %v, want ErrNoStream", err)
	}
}

func mustSpec(t *testing.T, op, kind, dir string) Spec {
	t.Helper()
	spec, err := ParseSpec(op, kind, dir)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// sendLine marshals v and writes it as one protocol line.
func sendLine(t *testing.T, conn net.Conn, v any) {
	t.Helper()
	line, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(append(line, '\n')); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func TestNetStreamProtocolErrors(t *testing.T) {
	ns := startNet(t, Config{MaxWait: 20 * time.Microsecond})
	conn, r := rawConn(t, ns.Addr())

	// Chunk for a stream that was never opened.
	sendLine(t, conn, WireRequest{ID: 1, Type: "stream_chunk", Stream: 5, Data: []int64{1}})
	if resp := readResp(t, r); resp.Code != CodeNoStream {
		t.Fatalf("chunk on unopened stream: code %q, want %q", resp.Code, CodeNoStream)
	}
	// Close for a stream that was never opened.
	sendLine(t, conn, WireRequest{ID: 2, Type: "stream_close", Stream: 5})
	if resp := readResp(t, r); resp.Code != CodeNoStream {
		t.Fatalf("close on unopened stream: code %q, want %q", resp.Code, CodeNoStream)
	}
	// Backward specs cannot stream; the wire carries the dedicated code
	// and the client maps it back to the typed sentinel.
	sendLine(t, conn, WireRequest{ID: 3, Type: "stream_open", Stream: 1, Op: "sum", Dir: "backward"})
	resp := readResp(t, r)
	if resp.Code != CodeStreamUnsupported {
		t.Fatalf("backward stream_open: code %q, want %q", resp.Code, CodeStreamUnsupported)
	}
	if err := errorForCode(resp.Code, resp.Error); !errors.Is(err, ErrStreamUnsupported) || !errors.Is(err, ErrBadRequest) {
		t.Fatalf("decoded backward rejection %v, want ErrStreamUnsupported wrapping ErrBadRequest", err)
	}
	// Duplicate stream id on one connection.
	sendLine(t, conn, WireRequest{ID: 4, Type: "stream_open", Stream: 7, Op: "sum"})
	if resp := readResp(t, r); resp.Error != "" {
		t.Fatalf("open: %v", resp.Error)
	}
	sendLine(t, conn, WireRequest{ID: 5, Type: "stream_open", Stream: 7, Op: "sum"})
	if resp := readResp(t, r); resp.Code != CodeBadRequest {
		t.Fatalf("duplicate open: code %q, want %q", resp.Code, CodeBadRequest)
	}
	// Unknown message type.
	sendLine(t, conn, WireRequest{ID: 6, Type: "stream_frobnicate", Stream: 7})
	if resp := readResp(t, r); resp.Code != CodeBadRequest {
		t.Fatalf("unknown type: code %q, want %q", resp.Code, CodeBadRequest)
	}
}

func TestNetStreamCapAndDisable(t *testing.T) {
	ns := startNetCfg(t, Config{MaxWait: 20 * time.Microsecond}, NetConfig{MaxStreams: 2})
	conn, r := rawConn(t, ns.Addr())
	for sid := uint64(1); sid <= 2; sid++ {
		sendLine(t, conn, WireRequest{ID: sid, Type: "stream_open", Stream: sid, Op: "sum"})
		if resp := readResp(t, r); resp.Error != "" {
			t.Fatalf("open %d: %v", sid, resp.Error)
		}
	}
	sendLine(t, conn, WireRequest{ID: 3, Type: "stream_open", Stream: 3, Op: "sum"})
	resp := readResp(t, r)
	if resp.Code != CodeOverloaded {
		t.Fatalf("over-cap open: code %q, want %q", resp.Code, CodeOverloaded)
	}
	if err := errorForCode(resp.Code, resp.Error); !(RetryPolicy{}).Retryable(err) {
		t.Fatal("over-cap open must be retryable (slots free up)")
	}
	// Closing one stream frees a slot.
	sendLine(t, conn, WireRequest{ID: 4, Type: "stream_close", Stream: 1})
	if resp := readResp(t, r); resp.Error != "" {
		t.Fatalf("close: %v", resp.Error)
	}
	sendLine(t, conn, WireRequest{ID: 5, Type: "stream_open", Stream: 3, Op: "sum"})
	if resp := readResp(t, r); resp.Error != "" {
		t.Fatalf("open after free: %v", resp.Error)
	}

	// MaxStreams < 0 disables streaming wholesale.
	ns2 := startNetCfg(t, Config{MaxWait: 20 * time.Microsecond}, NetConfig{MaxStreams: -1})
	conn2, r2 := rawConn(t, ns2.Addr())
	sendLine(t, conn2, WireRequest{ID: 1, Type: "stream_open", Stream: 1, Op: "sum"})
	if resp := readResp(t, r2); resp.Code != CodeBadRequest {
		t.Fatalf("disabled streaming open: code %q, want %q", resp.Code, CodeBadRequest)
	}
}

func TestNetStreamIdleTTL(t *testing.T) {
	ns := startNetCfg(t, Config{MaxWait: 20 * time.Microsecond}, NetConfig{StreamIdleTTL: 30 * time.Millisecond})
	conn, r := rawConn(t, ns.Addr())
	sendLine(t, conn, WireRequest{ID: 1, Type: "stream_open", Stream: 1, Op: "sum"})
	if resp := readResp(t, r); resp.Error != "" {
		t.Fatalf("open: %v", resp.Error)
	}
	sendLine(t, conn, WireRequest{ID: 2, Type: "stream_chunk", Stream: 1, Data: []int64{1, 2}})
	if resp := readResp(t, r); resp.Error != "" {
		t.Fatalf("chunk: %v", resp.Error)
	}
	// Go idle past the TTL: the session's carry is freed server-side...
	waitStats(t, ns.Stats, func(s Stats) bool { return s.StreamsExpired == 1 && s.StreamsActive == 0 },
		"idle stream to expire")
	// ...and a late chunk gets no_stream, not a silent wrong-carry scan.
	sendLine(t, conn, WireRequest{ID: 3, Type: "stream_chunk", Stream: 1, Data: []int64{3}})
	if resp := readResp(t, r); resp.Code != CodeNoStream {
		t.Fatalf("post-TTL chunk: code %q, want %q", resp.Code, CodeNoStream)
	}
}

// TestNetResponseBudget is the response-blowout regression: a server
// with a small line budget must refuse (not emit) one-shot responses
// that could exceed it — leaving the connection usable — and the same
// vector must go through fine as a stream of small chunks.
func TestNetResponseBudget(t *testing.T) {
	const budget = 4096
	ns := startNetCfg(t, Config{MaxWait: 20 * time.Microsecond}, NetConfig{MaxLineBytes: budget})
	c, err := DialMaxLine(ns.Addr(), budget)
	if err != nil {
		t.Fatalf("DialMaxLine: %v", err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(5))
	big := randomData(rng, 300) // worst-case response 48+21*300 > 4096; request line itself fits
	if maxRespBytes(len(big)) <= budget {
		t.Fatal("test vector too small to trip the response budget")
	}
	_, err = c.Scan("sum", "", "", big)
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("over-budget one-shot = %v, want ErrBadRequest (too_large)", err)
	}
	if !strings.Contains(err.Error(), "stream") {
		t.Fatalf("refusal should point at streaming, got %q", err)
	}
	// The connection survived the refusal.
	if got, err := c.Scan("sum", "inclusive", "", []int64{1, 2, 3}); err != nil || !reflect.DeepEqual(got, []int64{1, 3, 6}) {
		t.Fatalf("scan after refusal = (%v, %v)", got, err)
	}
	// Streaming is the documented escape hatch for the same vector.
	want := directScan(mustSpec(t, "sum", "exclusive", "forward"), big)
	got, err := c.StreamScan(context.Background(), "sum", "", "", big, 100)
	if err != nil {
		t.Fatalf("StreamScan under small budget: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("streamed result diverges from reference under small budget")
	}
	// An oversized single CHUNK is refused too — and fails its stream,
	// because skipping it would corrupt the carry.
	s, err := c.OpenStream(context.Background(), "sum", "", "")
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	if _, err := s.Send(context.Background(), big); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversized chunk = %v, want ErrBadRequest (too_large)", err)
	}
	if _, err := s.Send(context.Background(), []int64{1}); err == nil {
		t.Fatal("stream must be dead after an oversized chunk")
	}
	waitStats(t, ns.Stats, func(s Stats) bool { return s.StreamsActive == 0 },
		"killed stream to leave the ledger")
}

// TestNetStreamSessionFreedOnConnClose: a client that vanishes with
// streams open (the conn.drop case) must leak no session state — the
// server aborts the streams and the active gauge returns to zero.
func TestNetStreamSessionFreedOnConnClose(t *testing.T) {
	ns := startNet(t, Config{MaxWait: 20 * time.Microsecond})
	conn, r := rawConn(t, ns.Addr())
	for sid := uint64(1); sid <= 3; sid++ {
		sendLine(t, conn, WireRequest{ID: sid, Type: "stream_open", Stream: sid, Op: "sum"})
		if resp := readResp(t, r); resp.Error != "" {
			t.Fatalf("open %d: %v", sid, resp.Error)
		}
	}
	sendLine(t, conn, WireRequest{ID: 10, Type: "stream_chunk", Stream: 2, Data: []int64{1, 2, 3}})
	if resp := readResp(t, r); resp.Error != "" {
		t.Fatalf("chunk: %v", resp.Error)
	}
	if st := ns.Stats(); st.StreamsActive != 3 {
		t.Fatalf("active = %d, want 3", st.StreamsActive)
	}
	conn.Close() // abrupt: no stream_close for any of them
	st := waitStats(t, ns.Stats, func(s Stats) bool { return s.StreamsActive == 0 },
		"sessions to be freed after abrupt close")
	if st.StreamsFailed != 3 {
		t.Fatalf("failed = %d, want 3 (aborted by conn teardown); stats %v", st.StreamsFailed, st)
	}
	if st.StreamsOpened != st.StreamsClosed+st.StreamsFailed+st.StreamsExpired {
		t.Fatalf("stream ledger does not close: %v", st)
	}
}
