package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"scans/internal/arena"
)

// FailoverClient fronts an ordered list of coordinator addresses —
// primary first, standbys after — and moves between them when the one
// it is talking to dies. One-shot scans simply re-dial and re-issue
// (they are idempotent); streamed scans re-attach to their session on
// the next coordinator by resume token, so a stream that was half done
// when the primary was killed finishes on the standby with bit-identical
// results instead of starting over. It is the client half of the
// cluster's control-plane failure model (DESIGN.md §9); cmd/scanload's
// -kill-coordinator-after mode drives it under load.
//
// Concurrency: any number of goroutines may use one FailoverClient; they
// share the underlying multiplexed Client. A failure flips the shared
// connection once — whoever notices first re-dials, the rest pile onto
// the fresh connection.
type FailoverClient struct {
	addrs   []string
	proto   string
	maxLine int

	mu  sync.Mutex
	cli *Client
	idx int // addrs index cli is connected to

	resumed    atomic.Uint64
	failedOver atomic.Uint64
	firstAlt   atomic.Int64 // unixnano of the first success served by a non-primary
}

// DialFailover creates a failover client over addrs (tried in order,
// wrapping). The dial is lazy — the first request connects — so a
// standby-only fleet that is still coming up does not fail construction.
func DialFailover(proto string, maxLineBytes int, addrs ...string) (*FailoverClient, error) {
	if len(addrs) == 0 {
		return nil, errors.New("serve: DialFailover needs at least one address")
	}
	return &FailoverClient{addrs: addrs, proto: proto, maxLine: maxLineBytes}, nil
}

// Resumed counts streams successfully re-attached by resume token.
func (f *FailoverClient) Resumed() uint64 { return f.resumed.Load() }

// FailedOver counts requests (one-shot or streamed) that completed
// against a non-primary address.
func (f *FailoverClient) FailedOver() uint64 { return f.failedOver.Load() }

// FirstFailoverAt returns when the first non-primary-served request
// completed (the zero time if none has): the "recovery achieved" edge
// of the failover gap metric.
func (f *FailoverClient) FirstFailoverAt() time.Time {
	ns := f.firstAlt.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// Close tears down the current connection (if any).
func (f *FailoverClient) Close() {
	f.mu.Lock()
	cli := f.cli
	f.cli = nil
	f.mu.Unlock()
	if cli != nil {
		cli.Close()
	}
}

// current returns the shared live client, dialing through the address
// ring if there is none. Every address gets one dial attempt per call.
func (f *FailoverClient) current() (*Client, int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cli != nil {
		return f.cli, f.idx, nil
	}
	var lastErr error
	for i := 0; i < len(f.addrs); i++ {
		idx := (f.idx + i) % len(f.addrs)
		cli, err := DialMaxLineProto(f.addrs[idx], f.maxLine, f.proto)
		if err != nil {
			lastErr = err
			continue
		}
		f.cli, f.idx = cli, idx
		return cli, idx, nil
	}
	return nil, 0, lastErr
}

// fail reports cli dead: if it is still the shared connection, drop it
// and advance the ring so the next dial starts at the following address.
func (f *FailoverClient) fail(cli *Client, idx int) {
	f.mu.Lock()
	if f.cli == cli {
		f.cli = nil
		f.idx = (idx + 1) % len(f.addrs)
	}
	f.mu.Unlock()
	cli.Close()
}

// noteSuccess records a completed request and, for non-primary serves,
// the failover bookkeeping.
func (f *FailoverClient) noteSuccess(idx int) {
	if idx != 0 {
		f.failedOver.Add(1)
		f.firstAlt.CompareAndSwap(0, time.Now().UnixNano())
	}
}

// connFailure reports whether err is a connection-level failure (dial
// error, dead socket, torn frame) rather than a typed server answer. A
// typed answer is authoritative — the coordinator is alive and said no —
// so failing over on it would just re-ask a healthy fleet. ErrClosed IS
// a failover trigger: "shutting down" is exactly when the standby takes
// over.
func connFailure(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	for _, typed := range []error{
		ErrBadRequest, ErrOverloaded, ErrInternal, ErrShed,
		ErrNoStream, ErrStreamFailed, ErrStreamUnsupported, ErrShardFailed,
		ErrXchgFailed,
	} {
		if errors.Is(err, typed) {
			return false
		}
	}
	return true
}

// ScanCtx is Client.ScanCtx with failover: connection-level failures
// rotate to the next address and re-issue; typed server answers return
// as-is.
func (f *FailoverClient) ScanCtx(ctx context.Context, op, kind, dir string, data []int64) ([]int64, error) {
	var lastErr error
	for attempt := 0; attempt < 2*len(f.addrs); attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cli, idx, err := f.current()
		if err != nil {
			lastErr = err
			continue
		}
		res, err := cli.ScanCtx(ctx, op, kind, dir, data)
		if err == nil {
			f.noteSuccess(idx)
			return res, nil
		}
		if !connFailure(err) {
			return nil, err
		}
		lastErr = err
		f.fail(cli, idx)
	}
	return nil, lastErr
}

// chunkPrefixLen is how many result elements the first k chunks of an
// n-element vector cover (the last chunk may be short).
func chunkPrefixLen(k, chunkElems, n int) int {
	return min(k*chunkElems, n)
}

// tryResume re-attaches to a resumable stream on whichever coordinator
// answers, returning the stream, the server's resume point, and the
// serving client/index.
func (f *FailoverClient) tryResume(ctx context.Context, token string, lastAcked uint64) (*ClientStream, uint64, *Client, int, error) {
	var lastErr error
	for attempt := 0; attempt < len(f.addrs)+1; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, nil, 0, err
		}
		cli, idx, err := f.current()
		if err != nil {
			lastErr = err
			continue
		}
		s, from, err := cli.ResumeStream(ctx, token, lastAcked)
		if err == nil {
			return s, from, cli, idx, nil
		}
		if !connFailure(err) {
			return nil, 0, nil, 0, err
		}
		lastErr = err
		f.fail(cli, idx)
	}
	return nil, 0, nil, 0, lastErr
}

// StreamScan is Client.StreamScan with failover: when the serving
// coordinator dies mid-stream, the session is resumed by token on the
// next address — rolling back to the server's resume point when its
// replica lagged the acks the client already holds — and the result is
// bit-identical to an unfailed run. A stream whose token was never
// offered (old server) or whose record did not survive (no_stream on
// resume) restarts from the first chunk instead. Typed server failures
// return as-is.
func (f *FailoverClient) StreamScan(ctx context.Context, op, kind, dir string, data []int64, chunkElems int) ([]int64, error) {
	if chunkElems <= 0 {
		chunkElems = DefaultStreamChunk
	}
	if len(data) <= chunkElems {
		return f.ScanCtx(ctx, op, kind, dir, data)
	}
	out := arena.GetInt64s(len(data))[:0]
	fail := func(err error) ([]int64, error) {
		arena.PutInt64s(out)
		return nil, err
	}
	var (
		s       *ClientStream
		cli     *Client
		idx     int
		token   string
		acked   int // chunks whose responses we hold
		lastErr error
	)
	budget := 2*len(f.addrs) + 2
	for try := 0; try < budget; try++ {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		if s == nil {
			// Fresh stream from chunk 0 (first try, or resume impossible).
			var err error
			cli, idx, err = f.current()
			if err != nil {
				lastErr = err
				continue
			}
			s, err = cli.OpenStream(ctx, op, kind, dir)
			if err != nil {
				if !connFailure(err) {
					return fail(err)
				}
				lastErr = err
				f.fail(cli, idx)
				continue
			}
			token = s.ResumeToken()
			acked = 0
			out = out[:0]
		}
		var err error
		out, acked, err = s.pump(ctx, data, chunkElems, acked, out)
		if err == nil {
			if _, cerr := s.Close(ctx); cerr == nil {
				f.noteSuccess(idx)
				return out, nil
			} else {
				err = cerr
			}
		}
		if !connFailure(err) {
			// Typed chunk/close failure: the server freed the session (and
			// its resume record), so the stream is unrecoverable by design.
			return fail(err)
		}
		lastErr = err
		f.fail(cli, idx)
		s = nil
		if token == "" {
			continue // not resumable: next try restarts from scratch
		}
		rs, from, rcli, ridx, rerr := f.tryResume(ctx, token, uint64(acked))
		if rerr != nil {
			if errors.Is(rerr, ErrNoStream) || errors.Is(rerr, ErrBadRequest) {
				// The record never made it to (or already left) this
				// coordinator; restart from scratch on the next try.
				continue
			}
			if !connFailure(rerr) {
				return fail(rerr)
			}
			lastErr = rerr
			continue
		}
		f.resumed.Add(1)
		s, cli, idx = rs, rcli, ridx
		// The server expects chunk `from` next (1-based): roll our
		// high-water mark and output back to match. from ≤ acked+1, so
		// this only ever rewinds (recomputation is bit-identical).
		acked = int(from) - 1
		out = out[:chunkPrefixLen(acked, chunkElems, len(data))]
	}
	return fail(lastErr)
}
