package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"scans/internal/arena"
	"scans/internal/scan"
)

// Float64 elements on the wire, per §3.4 of the paper: floating-point
// keys ride the INTEGER scan kernels through an order-preserving
// float↔int bijection ("flipping the exponent and significand if the
// sign bit is set"). The server never grows float kernels — a float64
// request is mapped into the int64 domain at the wire boundary, fused
// into the same batches as everyone else's int64 traffic, and mapped
// back on the way out. That keeps every downstream layer (batcher,
// kernels, cluster sharding) monomorphic.
//
// Per-op mapping:
//
//   - max/min: scan.FloatOrderKey, the §3.4 bijection. Order-preserving,
//     so max/min over keys IS max/min over floats — results are exact
//     for every input, including ±Inf and signed zeros.
//   - sum: floats must be exactly-representable integers (f == trunc(f),
//     |f| <= 2^53). Those convert to int64 losslessly, the kernel sums
//     with exact integer associativity, and the result converts back.
//     Restricting to the exact-int path is deliberate: general float
//     addition is NOT associative, so a batched/sharded float sum would
//     depend on batch boundaries and shard splits — the bit-identical
//     contract (cluster results == single-node results) would be
//     unkeepable. Out-of-range or fractional inputs are rejected with
//     bad_request rather than silently rounded. Caveat: a running SUM
//     may exceed 2^53 even when every input is within it; the int64
//     kernel value stays exact, but its float64 rendering rounds to the
//     nearest representable double.
//   - mul: no mapping (neither order-preserving nor exact); rejected.
//
// NaN has no position in the float order and is rejected for every op.

// Elem values for WireRequest.Elem.
const (
	// ElemInt64 is the default element kind (Data/Result vectors).
	ElemInt64 = "int64"
	// ElemFloat64 selects float64 elements (FData/FResult vectors).
	ElemFloat64 = "float64"
)

// maxExactFloatInt is the largest integer magnitude exactly
// representable in a float64 (2^53).
const maxExactFloatInt = 1 << 53

// FloatVec is a []float64 that survives the JSON wire with non-finite
// values. JSON has no token for IEEE ±Inf — encoding/json refuses to
// marshal them — but exclusive float max/min scans legitimately produce
// ∓Inf at segment heads (the identities), and ±Inf are valid max/min
// INPUTS too. Non-finite elements travel as the JSON strings "+Inf",
// "-Inf", and "NaN" (so a NaN can reach the server and be rejected with
// a typed bad_request instead of a client-side marshal failure); finite
// elements are ordinary JSON numbers in shortest-round-trip form.
type FloatVec []float64

// MarshalJSON implements json.Marshaler with the non-finite encoding.
func (v FloatVec) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 1+25*len(v))
	b = append(b, '[')
	for i, f := range v {
		if i > 0 {
			b = append(b, ',')
		}
		switch {
		case math.IsInf(f, 1):
			b = append(b, `"+Inf"`...)
		case math.IsInf(f, -1):
			b = append(b, `"-Inf"`...)
		case math.IsNaN(f):
			b = append(b, `"NaN"`...)
		default:
			b = strconv.AppendFloat(b, f, 'g', -1, 64)
		}
	}
	return append(b, ']'), nil
}

// UnmarshalJSON implements json.Unmarshaler, accepting numbers plus the
// quoted non-finite tokens.
func (v *FloatVec) UnmarshalJSON(data []byte) error {
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	out := make(FloatVec, len(raw))
	for i, r := range raw {
		if len(r) > 0 && r[0] == '"' {
			var s string
			if err := json.Unmarshal(r, &s); err != nil {
				return err
			}
			switch s {
			case "+Inf", "Inf":
				out[i] = math.Inf(1)
			case "-Inf":
				out[i] = math.Inf(-1)
			case "NaN":
				out[i] = math.NaN()
			default:
				return fmt.Errorf("unknown float64 token %q", s)
			}
			continue
		}
		f, err := strconv.ParseFloat(string(r), 64)
		if err != nil {
			return err
		}
		out[i] = f
	}
	*v = out
	return nil
}

// maxRespBytesFloat is maxRespBytes for a float64 result line: Go's
// shortest-round-trip float formatting tops out at 24 characters (e.g.
// "-2.2250738585072014e-308") plus a comma, envelope under 48.
func maxRespBytesFloat(n int) int { return 48 + 25*n }

// floatKeys maps a float64 request vector into the int64 kernel domain
// for op, or rejects the request with an error wrapping ErrBadRequest.
// A non-empty key vector is arena-backed and owned by the caller.
func floatKeys(op Op, fdata []float64) ([]int64, error) {
	keys := arena.GetInt64s(len(fdata))
	fail := func(err error) ([]int64, error) {
		arena.PutInt64s(keys)
		return nil, err
	}
	switch op {
	case OpMax, OpMin:
		for i, f := range fdata {
			if math.IsNaN(f) {
				return fail(fmt.Errorf("%w: float64 element %d is NaN, which has no position in the float order", ErrBadRequest, i))
			}
			keys[i] = scan.FloatOrderKey(f)
		}
	case OpSum:
		for i, f := range fdata {
			// f != Trunc(f) also catches NaN (NaN != NaN); Abs catches ±Inf.
			if f != math.Trunc(f) || math.Abs(f) > maxExactFloatInt {
				return fail(fmt.Errorf("%w: float64 sum requires exactly-representable integers (|v| <= 2^53, no fraction); element %d is %v", ErrBadRequest, i, f))
			}
			keys[i] = int64(f)
		}
	default:
		return fail(fmt.Errorf("%w: op has no float64 mapping (mul is neither order-preserving nor exact over floats)", ErrBadRequest))
	}
	return keys, nil
}

// floatResults maps kernel-domain results back to float64. For max/min
// the int64 identities (MinInt64/MaxInt64) surface at exclusive-scan
// heads; they are unreachable from any non-NaN input (both decode to
// NaN bit patterns), so they translate unambiguously to ∓Inf — exactly
// the float max/min identities.
func floatResults(op Op, res []int64) []float64 {
	out := make([]float64, len(res))
	switch op {
	case OpMax, OpMin:
		for i, v := range res {
			switch v {
			case math.MinInt64:
				out[i] = math.Inf(-1)
			case math.MaxInt64:
				out[i] = math.Inf(1)
			default:
				out[i] = scan.FloatFromOrderKey(v)
			}
		}
	default: // OpSum: exact until the running sum leaves ±2^53.
		for i, v := range res {
			out[i] = float64(v)
		}
	}
	return out
}
