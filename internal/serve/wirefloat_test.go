package serve

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"scans/internal/scan"
)

// TestFloatKeyRoundTrip: the §3.4 order-preserving bijection survives a
// round trip for every finite float, and preserves order across random
// pairs — the property that lets max/min ride the int64 kernels.
func TestFloatKeyRoundTrip(t *testing.T) {
	specials := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, -0.5,
		math.Inf(1), math.Inf(-1),
		math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		2.2250738585072014e-308, // smallest normal
	}
	rng := rand.New(rand.NewSource(7))
	vals := append([]float64{}, specials...)
	for i := 0; i < 5000; i++ {
		f := math.Float64frombits(rng.Uint64())
		if math.IsNaN(f) {
			continue
		}
		vals = append(vals, f)
	}
	for _, f := range vals {
		k := scan.FloatOrderKey(f)
		back := scan.FloatFromOrderKey(k)
		// -0 and +0 share a total-order position either way; compare bits
		// for everything else.
		if back != f && !(f == 0 && back == 0) {
			t.Fatalf("round trip %v -> %d -> %v", f, k, back)
		}
	}
	for i := 0; i < 20000; i++ {
		a, b := vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))]
		ka, kb := scan.FloatOrderKey(a), scan.FloatOrderKey(b)
		if (a < b) != (ka < kb) && a != b {
			t.Fatalf("order not preserved: %v vs %v -> %d vs %d", a, b, ka, kb)
		}
	}
}

// TestScanFloatsGolden drives float64 scans through the real TCP front
// end and pins results against hand-computed vectors, including the
// exclusive-head identity (∓Inf) and ±Inf inputs.
func TestScanFloatsGolden(t *testing.T) {
	ns := startNet(t, Config{})
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	cases := []struct {
		name          string
		op, kind, dir string
		in, want      []float64
	}{
		{"max inclusive", "max", "inclusive", "", []float64{1.5, -2, 7.25, 3}, []float64{1.5, 1.5, 7.25, 7.25}},
		{"max exclusive identity head", "max", "exclusive", "", []float64{1.5, -2, 7.25}, []float64{math.Inf(-1), 1.5, 1.5}},
		{"min exclusive identity head", "min", "exclusive", "", []float64{1.5, -2, 7.25}, []float64{math.Inf(1), 1.5, -2}},
		{"min inclusive with -Inf", "min", "inclusive", "", []float64{3, math.Inf(-1), 5}, []float64{3, math.Inf(-1), math.Inf(-1)}},
		{"max inclusive with +Inf", "max", "inclusive", "", []float64{3, math.Inf(1), 5}, []float64{3, math.Inf(1), math.Inf(1)}},
		{"max backward", "max", "inclusive", "backward", []float64{1, 9.5, 2}, []float64{9.5, 9.5, 2}},
		{"sum inclusive exact ints", "sum", "inclusive", "", []float64{1, -2, 4, 1 << 40}, []float64{1, -1, 3, 3 + (1 << 40)}},
		{"sum exclusive", "sum", "exclusive", "", []float64{5, 7}, []float64{0, 5}},
		{"min over negatives and -0", "min", "inclusive", "", []float64{math.Copysign(0, -1), 0.25, -0.25}, []float64{math.Copysign(0, -1), math.Copysign(0, -1), -0.25}},
	}
	for _, tc := range cases {
		got, err := c.ScanFloats(ctx, tc.op, tc.kind, tc.dir, tc.in)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("%s: got %v want %v", tc.name, got, tc.want)
		}
	}

	// Random max/min agreement with a serial float reference.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		in := make([]float64, n)
		for i := range in {
			in[i] = math.Float64frombits(rng.Uint64())
			if math.IsNaN(in[i]) {
				in[i] = 0
			}
		}
		got, err := c.ScanFloats(ctx, "max", "inclusive", "", in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		run := math.Inf(-1)
		for i, f := range in {
			run = math.Max(run, f)
			if got[i] != run {
				t.Fatalf("trial %d elem %d: got %v want %v", trial, i, got[i], run)
			}
		}
	}
}

// TestScanFloatsRejections: inputs outside the exactness contract come
// back as bad_request, both via floatKeys directly and over the wire.
func TestScanFloatsRejections(t *testing.T) {
	direct := []struct {
		name string
		op   Op
		in   []float64
	}{
		{"NaN max", OpMax, []float64{1, math.NaN()}},
		{"NaN min", OpMin, []float64{math.NaN()}},
		{"NaN sum", OpSum, []float64{math.NaN()}},
		{"fractional sum", OpSum, []float64{1.5}},
		{"sum above 2^53", OpSum, []float64{float64(maxExactFloatInt) * 2}},
		{"sum +Inf", OpSum, []float64{math.Inf(1)}},
		{"sum -Inf", OpSum, []float64{math.Inf(-1)}},
		{"mul has no mapping", OpMul, []float64{1, 1}},
	}
	for _, tc := range direct {
		if _, err := floatKeys(tc.op, tc.in); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("%s: err = %v, want ErrBadRequest", tc.name, err)
		}
	}
	// Boundary: exactly ±2^53 is representable and accepted.
	if _, err := floatKeys(OpSum, []float64{maxExactFloatInt, -maxExactFloatInt}); err != nil {
		t.Fatalf("±2^53 should be accepted: %v", err)
	}

	ns := startNet(t, Config{})
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	wire := []struct {
		name, op string
		in       []float64
	}{
		{"wire fractional sum", "sum", []float64{0.5}},
		{"wire NaN max", "max", []float64{math.NaN()}},
		{"wire mul", "mul", []float64{1}},
	}
	for _, tc := range wire {
		if _, err := c.ScanFloats(ctx, tc.op, "inclusive", "", tc.in); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("%s: err = %v, want ErrBadRequest", tc.name, err)
		}
	}
	// A bad-request float scan must not poison the connection.
	if got, err := c.ScanFloats(ctx, "sum", "inclusive", "", []float64{1, 2}); err != nil || got[1] != 3 {
		t.Fatalf("follow-up scan after rejection: %v %v", got, err)
	}
}
