// Package serve turns the scan kernels into a concurrent scan service.
//
// The paper's own argument for segmented scans (§3) is that many
// independent small scans can execute as ONE primitive pass over a
// single flat vector. This package applies that argument to serving:
// a Server accepts Submit requests from many goroutines, coalesces
// whatever arrives within a batching window into one flat vector plus
// segment-head flags, runs a single segmented-scan kernel pass per
// (op, kind, direction) group, and scatters the results back to
// per-request futures. Per-invocation overhead — dispatch, allocation,
// kernel startup — is paid once per batch instead of once per request,
// which is exactly the amortization Figure 10's long-vector rule buys
// the hardware.
//
// The pipeline is: Submit → bounded queue (backpressure) → batcher
// (one goroutine, owns the batching window and the per-tenant fair
// pick) → executor pool (sized via scan.Workers) → segmented kernels
// → futures.
//
// The failure model (see DESIGN.md "Failure model") is: admission is
// where overload is rejected (ErrOverloaded), the batcher is where
// dead work is shed (expired contexts and over-age queue entries are
// resolved with their error BEFORE the kernel pass — pay overhead
// once, never on dead work), and the executor is where kernel panics
// are isolated (the batch's futures fail with ErrInternal; the server
// stays up). Every accepted request gets exactly one terminal outcome.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"scans/internal/combine"
	"scans/internal/fault"
	"scans/internal/scan"
)

// Typed errors returned by Submit and friends. Callers branch on these
// with errors.Is; ErrOverloaded in particular is the backpressure
// signal — the bounded queue is full and the request was REJECTED, not
// queued.
var (
	// ErrOverloaded means the server's bounded request queue is full.
	// The request was not enqueued; the caller should back off or shed.
	ErrOverloaded = errors.New("serve: server overloaded (request queue full)")
	// ErrClosed means the server has been closed and accepts no new work.
	ErrClosed = errors.New("serve: server closed")
	// ErrBadRequest means the request's op/kind/direction was invalid.
	ErrBadRequest = errors.New("serve: bad request")
	// ErrInternal means the request's batch hit an isolated kernel
	// panic. The request was NOT executed (or its result is untrusted);
	// the server itself survived and a retry is reasonable.
	ErrInternal = errors.New("serve: internal error (kernel panic isolated)")
	// ErrShed means the request sat in the queue longer than the
	// server's QueueAgeLimit and was dropped before execution — stale
	// work is shed, never run. Retrying is reasonable once load drops.
	ErrShed = errors.New("serve: request shed (queue age limit exceeded)")
	// ErrNoStream means a streaming operation named a stream that is
	// unknown, already closed, or expired by the idle TTL. The carry is
	// gone; the caller must open a fresh stream and resubmit from the
	// first chunk.
	ErrNoStream = errors.New("serve: unknown, closed, or expired stream")
	// ErrStreamFailed means an earlier chunk of this stream did not
	// complete (deadline, shed, panic, overload), so the carry is
	// untrusted and the stream's state has been freed. The failing
	// chunk itself got the underlying typed error; later operations on
	// the dead stream get ErrStreamFailed. Recovery = a fresh stream.
	ErrStreamFailed = errors.New("serve: stream failed (an earlier chunk did not complete)")
	// ErrShardFailed means a cluster coordinator (internal/cluster)
	// could not complete one of this request's shards within the
	// per-shard retry budget — worker deaths, sustained worker
	// overload, or no healthy workers left. Only this request failed;
	// the coordinator itself survived and other requests were
	// unaffected. Retryable: the fleet may have healed (a probe
	// re-admitted a worker) by the next attempt. The sentinel lives
	// here, next to the rest of the wire-error vocabulary, because
	// serve owns the code↔error mapping; cluster wraps it with shard
	// detail.
	ErrShardFailed = errors.New("serve: shard failed (a coordinator shard exhausted its retries)")
	// ErrStreamUnsupported rejects OpenStream for backward specs: a
	// back-scan's carry depends on chunks that have not arrived yet, so
	// results could only be delivered at close after buffering the whole
	// vector — exactly what streaming exists to avoid. Submit backward
	// scans as one-shot requests (or reverse client-side). Wraps
	// ErrBadRequest: not retryable.
	ErrStreamUnsupported = fmt.Errorf("%w: backward scans cannot stream (the carry depends on later chunks)", ErrBadRequest)
	// ErrXchgFailed means an exchange-mode piece could not finish its
	// worker↔worker carry exchange: a peer round timed out, a peer
	// answered with an error, or the exchange was canceled because a
	// sibling piece failed. The worker itself is alive (this is a typed
	// answer, not a connection failure); the coordinator reacts by
	// re-running the whole request on the star data plane, which has no
	// peer dependencies.
	ErrXchgFailed = errors.New("serve: exchange failed (a peer carry-exchange round did not complete)")
	// ErrBadOp means a register_op submission was rejected: the program
	// failed to parse, failed the monoid property tests (the error
	// detail carries the counterexample), or the tenant is at its op
	// cap. Not retryable — the submission itself is wrong.
	ErrBadOp = errors.New("serve: bad user op")
	// ErrOpBudget means a user-defined combine op exceeded its per-call
	// step budget while serving a request. Validation bounds the op on
	// the inputs it sampled, but a data-dependent loop can still run
	// long on the caller's actual data; only the offending request
	// fails — the rest of its batch group is unaffected.
	ErrOpBudget = errors.New("serve: combine op exceeded its step budget")
	// ErrOpHash means a scan named a user op whose registration hash
	// differs from the one the caller pinned (WireRequest.OpHash): the
	// serving node holds a different program under that name. The
	// cluster coordinator reacts by re-pushing its registration and
	// retrying (star), or falling back to star from the exchange plane.
	ErrOpHash = errors.New("serve: combine op content hash mismatch")
)

// Op identifies the scan operator of a request. The service fixes the
// element type at int64 (the wire format's integer type); the four ops
// are the monoids the paper's algorithms lean on.
type Op uint8

const (
	// OpSum is the +-scan, one of the paper's two primitives.
	OpSum Op = iota
	// OpMax is the max-scan, the paper's second primitive. Identity
	// math.MinInt64.
	OpMax
	// OpMin is the min-scan (identity math.MaxInt64).
	OpMin
	// OpMul is the ×-scan (identity 1).
	OpMul
	opCount
	// OpUser is a tenant-registered combine op (internal/combine): the
	// wire form is "user:<name>", and Spec.User carries the name. Not
	// counted in opCount — a user spec is valid only with a name, and
	// servable only once resolved against a registry (Spec.Bind).
	OpUser Op = 255
)

// String returns the wire name of the op ("sum", "max", "min", "mul";
// "user" for registered ops — Spec.OpString includes the name).
func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	case OpMul:
		return "mul"
	case OpUser:
		return "user"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Kind selects the exclusive or inclusive form of the scan.
type Kind uint8

const (
	// Exclusive is the paper's default: dst[i] combines the elements
	// strictly before i, dst[0] is the identity.
	Exclusive Kind = iota
	// Inclusive includes element i itself.
	Inclusive
	kindCount
)

// String returns the wire name of the kind.
func (k Kind) String() string {
	if k == Inclusive {
		return "inclusive"
	}
	return "exclusive"
}

// Dir selects the forward or backward scan direction.
type Dir uint8

const (
	// Forward scans left-to-right.
	Forward Dir = iota
	// Backward scans right-to-left (the paper's "back-scans").
	Backward
	dirCount
)

// String returns the wire name of the direction.
func (d Dir) String() string {
	if d == Backward {
		return "backward"
	}
	return "forward"
}

// Spec fully identifies a scan flavor. Requests with equal Specs fuse
// into the same segmented kernel pass.
//
// User ops: Op == OpUser names a tenant-registered combine op. User
// carries the registered name (the wire form is "user:<name>") and
// Hash optionally pins the expected registration content hash — the
// admission path verifies it against the live registration and then
// zeroes it, so futures carrying the same registration land in the
// same batch group regardless of whether their callers pinned. The
// unexported reg field is the resolved registration; it participates
// in Spec equality, which is what scopes batch groups to one exact
// registration (a replacement mid-flight starts a new group instead of
// mixing semantics).
type Spec struct {
	Op   Op
	Kind Kind
	Dir  Dir

	// User is the registered op name when Op == OpUser ("" otherwise).
	User string
	// Hash, when nonzero on an OpUser spec, pins the expected
	// registration content hash; a mismatch at admission is ErrOpHash.
	Hash uint64

	reg *combine.Registered
}

// valid reports whether every field is in range.
func (s Spec) valid() bool {
	if s.Kind >= kindCount || s.Dir >= dirCount {
		return false
	}
	if s.Op == OpUser {
		return s.User != ""
	}
	return s.Op < opCount && s.User == "" && s.Hash == 0
}

// Valid reports whether every field is in range, for Backend
// implementations that accept Specs built outside ParseSpec.
func (s Spec) Valid() bool { return s.valid() }

// OpString returns the wire name of the spec's operator: "sum", "max",
// "min", "mul", or "user:<name>".
func (s Spec) OpString() string {
	if s.Op == OpUser {
		return "user:" + s.User
	}
	return s.Op.String()
}

// String returns e.g. "sum/exclusive/forward".
func (s Spec) String() string {
	return s.OpString() + "/" + s.Kind.String() + "/" + s.Dir.String()
}

// Bind returns a copy of the spec carrying a resolved registration, so
// Backend implementations that already hold the Registered (cluster
// workers serving exchange pieces, the coordinator's own folds) skip
// the registry lookup at admission. Bind does not bypass verification:
// admission still checks any pinned Hash against the binding.
func (s Spec) Bind(r *combine.Registered) Spec {
	s.reg = r
	return s
}

// Binding returns the resolved registration of an admitted OpUser spec
// (nil for builtins or unresolved specs).
func (s Spec) Binding() *combine.Registered { return s.reg }

// Width returns the spec's element tuple width: 1 for every builtin,
// the registered program's width for a bound user op. Payload lengths
// must be a multiple of it.
func (s Spec) Width() int {
	if s.reg != nil {
		return s.reg.Width()
	}
	return 1
}

// Config tunes a Server. The zero value is usable: every field has a
// sensible default applied by New.
type Config struct {
	// MaxBatchElems flushes the building batch once its fused vector
	// reaches this many elements. Default 1 << 16.
	MaxBatchElems int
	// MaxBatchRequests flushes the building batch once it holds this
	// many requests. 1 disables fusion entirely (every request is its
	// own batch — the "unfused" baseline). Default 4096.
	MaxBatchRequests int
	// MinBatchRequests is the batching fill target. The batcher always
	// fuses greedily (everything already queued joins the batch); below
	// the target it yields the processor to let runnable submitters
	// enqueue, and flushes as soon as a yield surfaces no new request
	// (or MaxWait is spent). Fusion therefore tracks the offered
	// concurrency and never parks a timer: a lone request flushes after
	// one yield. Default 256.
	MinBatchRequests int
	// MaxWait caps how long a below-target batch keeps yielding for
	// stragglers before flushing anyway. <= 0 disables yielding: the
	// queue is drained once and the batch flushes. Default 100µs.
	MaxWait time.Duration
	// QueueLimit caps the submission queue. A full queue rejects with
	// ErrOverloaded instead of growing without bound. Default 4096.
	QueueLimit int
	// QueueAgeLimit sheds requests that waited in the queue longer than
	// this before reaching a kernel pass: they resolve with ErrShed
	// instead of executing. Shedding happens at batch-assembly time —
	// before the request's payload is ever copied into a fused vector —
	// so under sustained overload the server spends kernel passes only
	// on work whose caller plausibly still cares. 0 disables (default).
	QueueAgeLimit time.Duration
	// TenantWeights maps tenant names to batch-slot weights for the
	// batcher's weighted round-robin pick (see Req.Tenant). Tenants not
	// listed (including the default "" tenant) get weight 1. A tenant
	// with weight w gets up to w consecutive batch slots per round, so
	// a flooding tenant degrades to its fair share of each batch
	// instead of starving everyone behind it in FIFO order.
	TenantWeights map[string]int
	// Executors sizes the batch-executor worker pool; <= 0 means
	// scan.Workers(0), i.e. GOMAXPROCS. Multiple executors pipeline:
	// one batch can run kernels while the batcher assembles the next.
	Executors int
	// Workers is the per-kernel goroutine count handed to the parallel
	// segmented kernels; <= 0 means scan.Workers(0).
	Workers int
	// Faults is the chaos-injection hook: when non-nil, the server
	// consults the fault.KernelSlow and fault.KernelPanic points inside
	// each kernel pass. nil (the default) costs a nil check per batch.
	Faults *fault.Set
	// OpCap bounds how many distinct user combine ops one tenant may
	// register (re-registration of an existing name never counts).
	// <= 0 means combine.DefaultPerTenantCap.
	OpCap int

	// VMDispatch selects how user combine ops execute:
	// VMDispatchVector (the default) compiles each registration to a
	// lane-blocked vector plan — programs canonical to a builtin monoid
	// promote all the way to the native kernels — falling back to
	// per-element Exec only for programs with irreducible control flow
	// or sub-MinVecTuples requests; VMDispatchScalar forces the
	// per-element interpreter everywhere (the PR 9 baseline, kept for
	// benchmarking and bit-identity comparisons). Results are
	// bit-identical either way.
	VMDispatch string

	// legacyFlatten selects the pre-zero-copy group path (flatten into a
	// fused src/flags vector, results as subslices of a fresh output).
	// Benchmark baseline only: its results are not arena-backed, so it
	// must never sit behind the TCP front end, whose handlers return
	// every result buffer to the arena.
	legacyFlatten bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MaxBatchElems <= 0 {
		c.MaxBatchElems = 1 << 16
	}
	if c.MaxBatchRequests <= 0 {
		c.MaxBatchRequests = 4096
	}
	if c.MinBatchRequests <= 0 {
		c.MinBatchRequests = 256
	}
	if c.MinBatchRequests > c.MaxBatchRequests {
		c.MinBatchRequests = c.MaxBatchRequests
	}
	if c.MaxWait == 0 {
		c.MaxWait = 100 * time.Microsecond
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 4096
	}
	if c.VMDispatch == "" {
		c.VMDispatch = VMDispatchVector
	}
	c.Executors = scan.Workers(c.Executors)
	return c
}

// VMDispatch values for Config.
const (
	VMDispatchVector = "vector"
	VMDispatchScalar = "scalar"
)

// vmVector reports whether the config wants vectorized user-op
// dispatch (anything but an explicit "scalar").
func (c Config) vmVector() bool { return c.VMDispatch != VMDispatchScalar }

// Req is one scan request. Spec and Data are required; Tenant
// optionally names the submitter for the batcher's weighted fair pick
// ("" is the shared default tenant).
type Req struct {
	Spec   Spec
	Data   []int64
	Tenant string

	// seeded/carry mark a stream chunk: the kernel pass sees the carry
	// injected ahead of Data at the segment head, so the chunk's result
	// continues the stream's running prefix (Figure 10's block-sum
	// stitch applied across time). Set only by Stream.Push.
	seeded bool
	carry  int64
}

// Future is the handle for an in-flight request. Wait blocks until the
// request has a terminal outcome: a result, a typed error, or the
// request's own context error if it expired while queued.
//
// Futures created by the public Submit* entry points live until the GC
// takes them. The internal synchronous paths (Scan, Submit, SubmitCtx,
// Stream.Push — everything that waits inline and never leaks the
// handle) instead recycle futures through a sync.Pool: poolable is set,
// refs counts the two parties that can still touch the future (the
// inline waiter and the batch pipeline), and whoever releases last
// returns it to the pool. That keeps the steady-state request path free
// of the per-request future+channel allocations that would otherwise
// dominate the zero-copy serving profile.
type Future struct {
	spec     Spec
	tenant   string
	ctx      context.Context
	enqueued time.Time
	data     []int64
	seeded   bool  // stream chunk: inject carry at the segment head
	carry    int64 // running prefix of all prior chunks (when seeded)
	res      []int64
	err      error
	resolved atomic.Bool
	// done is a one-token completion channel (capacity 1): complete
	// sends the single token, Wait consumes it. Non-poolable futures
	// re-send the token after each Wait so repeated/concurrent Waits all
	// return; the poolable single-waiter path leaves it consumed.
	done     chan struct{}
	poolable bool
	// refs is the 2-party release count for poolable futures: one ref
	// for the inline waiter, one for the batch pipeline (batcher or
	// executor — whichever resolves the future releases it). The last
	// release recycles the future.
	refs atomic.Int32
}

// futurePool recycles poolable futures (see Future doc).
var futurePool = sync.Pool{
	New: func() any { return &Future{done: make(chan struct{}, 1)} },
}

// getFuture checks a poolable future out of the pool.
func getFuture() *Future {
	f := futurePool.Get().(*Future)
	f.poolable = true
	return f
}

// putFuture scrubs and recycles a future. Only the last release path
// calls this; by then the token has been consumed and no other party
// holds a reference.
func putFuture(f *Future) {
	select {
	case <-f.done: // enqueue-failure path: token never consumed
	default:
	}
	f.spec = Spec{}
	f.tenant = ""
	f.ctx = nil
	f.data = nil
	f.res = nil
	f.err = nil
	f.seeded = false
	f.carry = 0
	f.resolved.Store(false)
	futurePool.Put(f)
}

// release drops one party's reference to a poolable future, recycling
// it when the count hits zero. A no-op for non-poolable futures (their
// refs never reach zero and the GC owns them).
func (f *Future) release() {
	if f.refs.Add(-1) == 0 && f.poolable {
		putFuture(f)
	}
}

// nelems is the request's footprint in a fused vector: its payload
// plus the injected carry element for stream chunks.
func (f *Future) nelems() int {
	if f.seeded {
		return len(f.data) + 1
	}
	return len(f.data)
}

// complete resolves the future exactly once; later calls are no-ops.
// The single-resolution guarantee is what makes panic recovery safe:
// a recover handler can blanket-fail a batch without double-resolving
// futures the scatter loop already delivered.
func (f *Future) complete(res []int64, err error) bool {
	if !f.resolved.CompareAndSwap(false, true) {
		return false
	}
	f.res, f.err = res, err
	f.done <- struct{}{} // cap 1, sent at most once: never blocks
	return true
}

// Wait blocks until the request has been served and returns its result.
// The result slice is owned by the caller; it aliases no other
// request's result (each request gets its own output buffer from the
// arena). Results obtained through the synchronous entry points flow
// back to the arena via the caller (see DESIGN.md "Arena ownership").
func (f *Future) Wait() ([]int64, error) {
	<-f.done
	res, err := f.res, f.err
	if !f.poolable {
		// Re-arm so repeated or concurrent Waits on a long-lived future
		// all return (they serialize through the token).
		f.done <- struct{}{}
	}
	return res, err
}

// Server is an in-process batched scan service. Create with New, submit
// from any number of goroutines, Close to drain and stop.
type Server struct {
	cfg    Config
	queue  chan *Future
	execCh chan []*Future

	// Fault points resolved once at construction; nil when chaos is
	// off, and a nil Point never fires.
	fpSlow    *fault.Point
	fpPanic   *fault.Point
	fpStall   *fault.Point
	fpCorrupt *fault.Point
	fpSkew    *fault.Point

	// ops is the tenant-scoped user combine-op registry; scans naming
	// "user:<name>" resolve against it at admission.
	ops *combine.Registry

	mu     sync.RWMutex // guards closed vs. sends on queue
	closed bool

	wg    sync.WaitGroup // batcher + executors
	stats stats
}

// New starts a Server with the given Config (zero value for defaults).
func New(cfg Config) *Server {
	s := newStopped(cfg)
	s.start()
	return s
}

// newStopped builds a Server without starting its goroutines. Tests use
// it to observe backpressure deterministically (nothing drains the
// queue until start is called).
func newStopped(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:       cfg,
		queue:     make(chan *Future, cfg.QueueLimit),
		execCh:    make(chan []*Future, cfg.Executors),
		ops:       combine.NewRegistry(cfg.OpCap),
		fpSlow:    cfg.Faults.Point(fault.KernelSlow),
		fpPanic:   cfg.Faults.Point(fault.KernelPanic),
		fpStall:   cfg.Faults.Point(fault.ExecStall),
		fpCorrupt: cfg.Faults.Point(fault.QueueCorrupt),
		fpSkew:    cfg.Faults.Point(fault.ClockSkew),
	}
}

// start launches the batcher and the executor pool.
func (s *Server) start() {
	s.wg.Add(1 + s.cfg.Executors)
	go s.batchLoop()
	for i := 0; i < s.cfg.Executors; i++ {
		go s.execLoop()
	}
}

// SubmitReq enqueues a scan request and returns a Future. ctx governs
// the request's lifetime: a nil or background context means "serve
// whenever"; a context with a deadline lets the batcher drop the
// request unexecuted once it expires (the future resolves with the
// context's error). An already-expired context is rejected outright.
//
// The data slice is retained until the batch executes; callers must
// not mutate it before Wait returns. Returns ErrOverloaded when the
// queue is full, ErrClosed after Close, ErrBadRequest for an invalid
// Spec.
func (s *Server) SubmitReq(ctx context.Context, r Req) (*Future, error) {
	return s.submitReq(ctx, r, false)
}

// submitReq is the shared admission path. poolable futures (internal
// synchronous callers only) are recycled after their single Wait; see
// the Future doc for the reference-count protocol.
func (s *Server) submitReq(ctx context.Context, r Req, poolable bool) (*Future, error) {
	if !r.Spec.valid() {
		s.stats.rejected.Add(1)
		return nil, fmt.Errorf("%w: invalid spec %s", ErrBadRequest, r.Spec)
	}
	if r.Spec.Op == OpUser {
		if err := s.resolveUserOp(&r); err != nil {
			s.stats.rejected.Add(1)
			return nil, err
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		s.stats.rejected.Add(1)
		return nil, err
	}
	var f *Future
	if poolable {
		f = getFuture()
	} else {
		f = &Future{done: make(chan struct{}, 1)}
	}
	f.spec = r.Spec
	f.tenant = r.Tenant
	f.ctx = ctx
	f.enqueued = time.Now()
	f.data = r.Data
	f.seeded = r.seeded
	f.carry = r.carry
	if d := s.fpSkew.Delay(); d > 0 {
		// Chaos: the submitter's clock "jumped" — the request looks like
		// it has been queued for d already, so age-based shedding fires.
		f.enqueued = f.enqueued.Add(-d)
	}
	if len(r.Data) == 0 {
		// Nothing to scan; resolve without a server round trip so empty
		// requests can never occupy batch slots. Only the waiter holds a
		// reference — the batch pipeline never sees this future.
		f.refs.Store(1)
		f.complete([]int64{}, nil)
		s.stats.requests.Add(1)
		s.stats.served.Add(1)
		return f, nil
	}
	f.refs.Store(2) // waiter + batch pipeline
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		s.stats.rejected.Add(1)
		if poolable {
			putFuture(f) // never enqueued: we own both refs
		}
		return nil, ErrClosed
	}
	select {
	case s.queue <- f:
		s.stats.requests.Add(1)
		return f, nil
	default:
		s.stats.rejected.Add(1)
		if poolable {
			putFuture(f)
		}
		return nil, ErrOverloaded
	}
}

// resolveUserOp binds an OpUser request to its live registration:
// lookup (unless the caller pre-bound via Spec.Bind), pinned-hash
// verification, and tuple-width admission. On success the spec's Hash
// is zeroed — it has served its purpose — so equal registrations fuse
// into one batch group however their callers pinned.
func (s *Server) resolveUserOp(r *Req) error {
	reg := r.Spec.reg
	if reg == nil {
		if reg = s.ops.Lookup(r.Tenant, r.Spec.User); reg == nil {
			return fmt.Errorf("%w: unknown user op %q for tenant %q (register_op first)", ErrBadRequest, r.Spec.User, r.Tenant)
		}
	}
	if r.Spec.Hash != 0 && r.Spec.Hash != reg.Hash {
		return fmt.Errorf("%w: op %q is registered as %#016x here, caller pinned %#016x", ErrOpHash, r.Spec.User, reg.Hash, r.Spec.Hash)
	}
	if w := reg.Width(); len(r.Data)%w != 0 {
		return fmt.Errorf("%w: op %q combines width-%d tuples; %d elements is not a whole number of tuples", ErrBadRequest, r.Spec.User, w, len(r.Data))
	}
	if r.seeded && reg.Width() != 1 {
		return fmt.Errorf("%w: op %q has width %d; streams carry width-1 ops only", ErrBadRequest, r.Spec.User, reg.Width())
	}
	r.Spec.Hash = 0
	r.Spec.reg = reg
	return nil
}

// RegisterScanOp validates source as a monoid and installs it as
// (tenant, name), returning the registration's content hash. This is
// the optional Backend capability behind the wire's register_op
// request (see OpRegistrar); rejections — parse errors, failed
// property tests with their counterexample, the tenant op cap — come
// back wrapped in ErrBadOp, which the wire maps to the bad_op code.
func (s *Server) RegisterScanOp(tenant, name, source string) (uint64, error) {
	reg, err := s.ops.Register(tenant, name, source)
	if err != nil {
		s.stats.opRejects.Add(1)
		return 0, fmt.Errorf("%w: %w", ErrBadOp, err)
	}
	s.stats.opRegisters.Add(1)
	return reg.Hash, nil
}

// LookupScanOp returns the tenant's live registration by name (nil if
// absent). Cluster coordinators use it to stamp piece specs with the
// registration they are dispatching for.
func (s *Server) LookupScanOp(tenant, name string) *combine.Registered {
	return s.ops.Lookup(tenant, name)
}

// ResolveScanOp binds a user-op spec to the tenant's live registration
// so callers outside the batch path (the worker-side exchange plane)
// can fold with the op's VM program. A pinned spec.Hash is verified
// (ErrOpHash on mismatch) and zeroed in the returned spec; width-1 ops
// only — the carries these callers fold are scalars. Builtin specs pass
// through unchanged.
func (s *Server) ResolveScanOp(spec Spec, tenant string) (Spec, error) {
	if spec.Op != OpUser {
		return spec, nil
	}
	r := Req{Spec: spec, Tenant: tenant, seeded: true}
	if err := s.resolveUserOp(&r); err != nil {
		return Spec{}, err
	}
	return r.Spec, nil
}

// scanReq is the pooled synchronous path shared by Submit, SubmitCtx,
// Scan, and Stream.Push: submit, wait inline, release the waiter ref so
// the future recycles. The returned result buffer is arena-backed and
// owned by the caller (Put it when done — see DESIGN.md).
func (s *Server) scanReq(ctx context.Context, r Req) ([]int64, error) {
	f, err := s.submitReq(ctx, r, true)
	if err != nil {
		return nil, err
	}
	res, werr := f.Wait()
	f.release()
	return res, werr
}

// SubmitAsync enqueues a request with no deadline (background context,
// default tenant) and returns its Future.
func (s *Server) SubmitAsync(spec Spec, data []int64) (*Future, error) {
	return s.SubmitReq(context.Background(), Req{Spec: spec, Data: data})
}

// Submit is the synchronous convenience form of SubmitAsync + Wait,
// riding the pooled future path.
func (s *Server) Submit(spec Spec, data []int64) ([]int64, error) {
	return s.scanReq(context.Background(), Req{Spec: spec, Data: data})
}

// SubmitCtx is the synchronous context-aware form: the request is
// dropped unexecuted (and SubmitCtx returns the context's error) if
// ctx expires before its batch reaches the kernels.
func (s *Server) SubmitCtx(ctx context.Context, spec Spec, data []int64) ([]int64, error) {
	return s.scanReq(ctx, Req{Spec: spec, Data: data})
}

// Scan runs one scan to completion under the given tenant. It is the
// Backend method the TCP front end calls for every one-shot request,
// shared by this in-process Server and a cluster Coordinator. The
// result buffer is arena-backed; the front end returns it to the arena
// after encoding the response.
func (s *Server) Scan(ctx context.Context, spec Spec, data []int64, tenant string) ([]int64, error) {
	return s.scanReq(ctx, Req{Spec: spec, Data: data, Tenant: tenant})
}

// Close stops accepting new requests, drains everything already queued
// (every accepted Future resolves), waits for the batcher and executors
// to exit, and returns. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// shedIfDead resolves a future whose caller has stopped caring —
// expired/canceled context, or queued beyond QueueAgeLimit — and
// reports whether it did. This is the batcher's admission gate into a
// batch: dead work is dropped BEFORE its payload is copied into a
// fused vector or a kernel pass spends cycles on it (the Figure 10
// amortization argument applied to failure: overhead is paid once per
// batch, and never for work nobody will read).
func (s *Server) shedIfDead(f *Future, now time.Time) bool {
	if err := f.ctx.Err(); err != nil {
		if f.complete(nil, err) {
			s.stats.deadlineDrops.Add(1)
		}
		return true
	}
	if lim := s.cfg.QueueAgeLimit; lim > 0 {
		if age := now.Sub(f.enqueued); age > lim {
			if f.complete(nil, fmt.Errorf("%w: queued %v, limit %v", ErrShed, age.Round(time.Microsecond), lim)) {
				s.stats.shed.Add(1)
			}
			return true
		}
	}
	return false
}

// batchLoop is the single goroutine that owns batch assembly. The
// policy is adaptive: fuse greedily (everything already queued joins);
// below the fill target, yield the processor so runnable submitters
// can enqueue, and flush once a yield surfaces nothing new or the
// window is spent. Fusion therefore tracks the offered concurrency
// with no timer parking — Go timer wakeups cost milliseconds on a
// loaded box, far more than the scans being fused — while the element
// and request caps still bound each kernel pass.
//
// Between the FIFO channel and the batch sits the per-tenant weighted
// round-robin pick (tenantQueues): arrivals drain into per-tenant
// FIFOs and batch slots are handed out a tenant at a time, so a tenant
// flooding the queue fills its own FIFO while other tenants' requests
// still land in the very next batch. Expired and over-age requests are
// shed at pick time, before joining any batch.
func (s *Server) batchLoop() {
	defer func() {
		close(s.execCh)
		s.wg.Done()
	}()
	pend := newTenantQueues(s.cfg.TenantWeights)
	open := true // queue channel still open
	for {
		if pend.empty() {
			if !open {
				return
			}
			f, ok := <-s.queue
			if !ok {
				return
			}
			pend.push(f)
		}
		batch := s.assemble(pend, &open)
		if len(batch) > 0 {
			s.execCh <- batch
		} else {
			batchSlicePool.Put(&batch)
		}
	}
}

// assemble builds one batch from the pending tenant queues, refilling
// them greedily from the submission channel and yielding below the
// fill target exactly as the pre-fairness batcher did.
// batchSlicePool recycles the []*Future batch slices that flow from the
// batcher to the executors, so steady-state assembly allocates nothing.
var batchSlicePool = sync.Pool{New: func() any { return new([]*Future) }}

func (s *Server) assemble(pend *tenantQueues, open *bool) []*Future {
	batch := (*batchSlicePool.Get().(*[]*Future))[:0]
	elems := 0
	sizeAtYield := -1
	var deadline time.Time
	for elems < s.cfg.MaxBatchElems && len(batch) < s.cfg.MaxBatchRequests {
		// Greedy: move everything already queued into the tenant FIFOs.
		if *open {
		drain:
			for {
				select {
				case f, ok := <-s.queue:
					if !ok {
						*open = false
						break drain
					}
					pend.push(f)
				default:
					break drain
				}
			}
		}
		if f := pend.pop(); f != nil {
			if s.shedIfDead(f, time.Now()) {
				f.release() // batch pipeline's ref: f never reaches an executor
				continue
			}
			if s.fpCorrupt.Fire() {
				// Chaos: the integrity check "detects" a corrupted queue
				// entry. The request fails typed and retryable instead of
				// executing on damaged state — the fail-safe contract a
				// real detector would honor.
				if f.complete(nil, fmt.Errorf("%w: queue corruption detected (injected fault)", ErrInternal)) {
					s.stats.corruptDrops.Add(1)
				}
				f.release()
				continue
			}
			batch = append(batch, f)
			elems += f.nelems()
			continue
		}
		// Nothing pending. Flush, unless the batch is below the fill
		// target and yielding is still making progress.
		if len(batch) == 0 {
			break
		}
		if len(batch) >= s.cfg.MinBatchRequests || s.cfg.MaxWait <= 0 || !*open {
			break
		}
		if sizeAtYield == len(batch) {
			// The last yield surfaced nothing: no submitter is
			// runnable, so more waiting buys occupancy only at the
			// price of parked latency. Flush.
			break
		}
		now := time.Now()
		if deadline.IsZero() {
			deadline = now.Add(s.cfg.MaxWait)
		} else if now.After(deadline) {
			break
		}
		sizeAtYield = len(batch)
		runtime.Gosched()
	}
	return batch
}

// execLoop runs batches handed over by the batcher until the channel
// closes at shutdown. runBatch isolates kernel panics per group, so a
// poisoned batch costs its own futures ErrInternal and nothing else;
// as a last line of defense a panic escaping runBatch itself (batch
// bookkeeping, stats) is caught here and the loop keeps serving.
func (s *Server) execLoop() {
	defer s.wg.Done()
	sc := newExecScratch()
	for batch := range s.execCh {
		// Chaos: a stalled executor ages everything still queued behind
		// this batch, which is what queue-age shedding and deadline
		// drops exist to absorb.
		s.fpStall.Sleep()
		s.runBatchSafe(sc, batch)
		// The executor's reference on every future in the batch: by now
		// each one is resolved (scatter or failBatch), so the pipeline is
		// done touching them and poolable ones may recycle once their
		// waiter is done too. Then recycle the batch slice itself.
		for i, f := range batch {
			f.release()
			batch[i] = nil
		}
		batch = batch[:0]
		batchSlicePool.Put(&batch)
	}
}

// runBatchSafe runs one batch, converting any panic that escapes batch
// bookkeeping into ErrInternal on the batch's unresolved futures.
func (s *Server) runBatchSafe(sc *execScratch, batch []*Future) {
	defer func() {
		if r := recover(); r != nil {
			s.failBatch(batch, r)
		}
	}()
	s.runBatch(sc, batch)
}

// failBatch resolves every not-yet-resolved future in a batch (or
// group) with ErrInternal after a recovered panic.
func (s *Server) failBatch(batch []*Future, cause any) {
	s.stats.panics.Add(1)
	err := fmt.Errorf("%w: %v", ErrInternal, cause)
	for _, f := range batch {
		if f.complete(nil, err) {
			s.stats.panicFailed.Add(1)
		}
	}
}

// Identity returns the identity element of the op's monoid: the value
// exclusive results surface directly (dst[0] for forward scans), the
// initial carry of a fresh stream (OpenStream) — seeding the first
// chunk with the identity makes every chunk take the same carry-seeded
// kernel path — and the seed of a cluster shard that starts a segment.
// Exported because the carry math is shared with internal/cluster.
func Identity(op Op) int64 {
	switch op {
	case OpMax:
		return math.MinInt64
	case OpMin:
		return math.MaxInt64
	case OpMul:
		return 1
	}
	return 0
}

// IdentitySpec generalizes Identity to bound user ops (width-1: the
// scalar carry paths — streams and cluster shard seeding — only exist
// for width-1 monoids).
func IdentitySpec(s Spec) int64 {
	if s.Op == OpUser && s.reg != nil {
		return s.reg.Prog.Identity[0]
	}
	return Identity(s.Op)
}

// CombineSpec folds two scalars with the spec's monoid — the carry
// arithmetic behind streams and cluster shard seeding, generalized to
// bound width-1 user ops. Builtins cannot fail; a user op that blows
// its step budget returns ErrOpBudget, any other VM fault ErrInternal.
func CombineSpec(s Spec, fr *combine.Frame, a, b int64) (int64, error) {
	if s.Op != OpUser {
		return Combine(s.Op, a, b), nil
	}
	if s.reg == nil {
		return 0, fmt.Errorf("%w: user op %q is unbound", ErrInternal, s.User)
	}
	// Promoted registrations (structurally a builtin monoid) fold with
	// the native combine — this is the carry path streams, the cluster
	// planner, and the exchange plane all share, so a promoted op pays
	// native cost end to end, not just in the batch kernels.
	if op, ok := promotedOp(s.reg); ok {
		return Combine(op, a, b), nil
	}
	v, err := s.reg.Prog.ExecScalar(fr, a, b)
	if err != nil {
		if errors.Is(err, combine.ErrBudget) {
			return 0, fmt.Errorf("%w: op %q: %v", ErrOpBudget, s.User, err)
		}
		return 0, fmt.Errorf("%w: op %q faulted: %v", ErrInternal, s.User, err)
	}
	return v, nil
}
