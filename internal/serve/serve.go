// Package serve turns the scan kernels into a concurrent scan service.
//
// The paper's own argument for segmented scans (§3) is that many
// independent small scans can execute as ONE primitive pass over a
// single flat vector. This package applies that argument to serving:
// a Server accepts Submit requests from many goroutines, coalesces
// whatever arrives within a batching window into one flat vector plus
// segment-head flags, runs a single segmented-scan kernel pass per
// (op, kind, direction) group, and scatters the results back to
// per-request futures. Per-invocation overhead — dispatch, allocation,
// kernel startup — is paid once per batch instead of once per request,
// which is exactly the amortization Figure 10's long-vector rule buys
// the hardware.
//
// The pipeline is: Submit → bounded queue (backpressure) → batcher
// (one goroutine, owns the batching window) → executor pool (sized via
// scan.Workers) → segmented kernels → futures.
package serve

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"scans/internal/scan"
)

// Typed errors returned by Submit and friends. Callers branch on these
// with errors.Is; ErrOverloaded in particular is the backpressure
// signal — the bounded queue is full and the request was REJECTED, not
// queued.
var (
	// ErrOverloaded means the server's bounded request queue is full.
	// The request was not enqueued; the caller should back off or shed.
	ErrOverloaded = errors.New("serve: server overloaded (request queue full)")
	// ErrClosed means the server has been closed and accepts no new work.
	ErrClosed = errors.New("serve: server closed")
	// ErrBadRequest means the request's op/kind/direction was invalid.
	ErrBadRequest = errors.New("serve: bad request")
)

// Op identifies the scan operator of a request. The service fixes the
// element type at int64 (the wire format's integer type); the four ops
// are the monoids the paper's algorithms lean on.
type Op uint8

const (
	// OpSum is the +-scan, one of the paper's two primitives.
	OpSum Op = iota
	// OpMax is the max-scan, the paper's second primitive. Identity
	// math.MinInt64.
	OpMax
	// OpMin is the min-scan (identity math.MaxInt64).
	OpMin
	// OpMul is the ×-scan (identity 1).
	OpMul
	opCount
)

// String returns the wire name of the op ("sum", "max", "min", "mul").
func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	case OpMul:
		return "mul"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Kind selects the exclusive or inclusive form of the scan.
type Kind uint8

const (
	// Exclusive is the paper's default: dst[i] combines the elements
	// strictly before i, dst[0] is the identity.
	Exclusive Kind = iota
	// Inclusive includes element i itself.
	Inclusive
	kindCount
)

// String returns the wire name of the kind.
func (k Kind) String() string {
	if k == Inclusive {
		return "inclusive"
	}
	return "exclusive"
}

// Dir selects the forward or backward scan direction.
type Dir uint8

const (
	// Forward scans left-to-right.
	Forward Dir = iota
	// Backward scans right-to-left (the paper's "back-scans").
	Backward
	dirCount
)

// String returns the wire name of the direction.
func (d Dir) String() string {
	if d == Backward {
		return "backward"
	}
	return "forward"
}

// Spec fully identifies a scan flavor. Requests with equal Specs fuse
// into the same segmented kernel pass.
type Spec struct {
	Op   Op
	Kind Kind
	Dir  Dir
}

// valid reports whether every field is in range.
func (s Spec) valid() bool {
	return s.Op < opCount && s.Kind < kindCount && s.Dir < dirCount
}

// String returns e.g. "sum/exclusive/forward".
func (s Spec) String() string {
	return s.Op.String() + "/" + s.Kind.String() + "/" + s.Dir.String()
}

// Config tunes a Server. The zero value is usable: every field has a
// sensible default applied by New.
type Config struct {
	// MaxBatchElems flushes the building batch once its fused vector
	// reaches this many elements. Default 1 << 16.
	MaxBatchElems int
	// MaxBatchRequests flushes the building batch once it holds this
	// many requests. 1 disables fusion entirely (every request is its
	// own batch — the "unfused" baseline). Default 4096.
	MaxBatchRequests int
	// MinBatchRequests is the batching fill target. The batcher always
	// fuses greedily (everything already queued joins the batch); below
	// the target it yields the processor to let runnable submitters
	// enqueue, and flushes as soon as a yield surfaces no new request
	// (or MaxWait is spent). Fusion therefore tracks the offered
	// concurrency and never parks a timer: a lone request flushes after
	// one yield. Default 256.
	MinBatchRequests int
	// MaxWait caps how long a below-target batch keeps yielding for
	// stragglers before flushing anyway. <= 0 disables yielding: the
	// queue is drained once and the batch flushes. Default 100µs.
	MaxWait time.Duration
	// QueueLimit caps the submission queue. A full queue rejects with
	// ErrOverloaded instead of growing without bound. Default 4096.
	QueueLimit int
	// Executors sizes the batch-executor worker pool; <= 0 means
	// scan.Workers(0), i.e. GOMAXPROCS. Multiple executors pipeline:
	// one batch can run kernels while the batcher assembles the next.
	Executors int
	// Workers is the per-kernel goroutine count handed to the parallel
	// segmented kernels; <= 0 means scan.Workers(0).
	Workers int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MaxBatchElems <= 0 {
		c.MaxBatchElems = 1 << 16
	}
	if c.MaxBatchRequests <= 0 {
		c.MaxBatchRequests = 4096
	}
	if c.MinBatchRequests <= 0 {
		c.MinBatchRequests = 256
	}
	if c.MinBatchRequests > c.MaxBatchRequests {
		c.MinBatchRequests = c.MaxBatchRequests
	}
	if c.MaxWait == 0 {
		c.MaxWait = 100 * time.Microsecond
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 4096
	}
	c.Executors = scan.Workers(c.Executors)
	return c
}

// Future is the handle for an in-flight request. Wait blocks until the
// batch containing the request has executed.
type Future struct {
	spec Spec
	data []int64
	res  []int64
	err  error
	done chan struct{}
}

// Wait blocks until the request has been served and returns its result.
// The result slice is owned by the caller; it aliases no other
// request's result (each request gets a disjoint subslice of its
// batch's output vector).
func (f *Future) Wait() ([]int64, error) {
	<-f.done
	return f.res, f.err
}

// Server is an in-process batched scan service. Create with New, submit
// from any number of goroutines, Close to drain and stop.
type Server struct {
	cfg    Config
	queue  chan *Future
	execCh chan []*Future

	mu     sync.RWMutex // guards closed vs. sends on queue
	closed bool

	wg    sync.WaitGroup // batcher + executors
	stats stats
}

// New starts a Server with the given Config (zero value for defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		queue:  make(chan *Future, cfg.QueueLimit),
		execCh: make(chan []*Future, cfg.Executors),
	}
	s.start()
	return s
}

// newStopped builds a Server without starting its goroutines. Tests use
// it to observe backpressure deterministically (nothing drains the
// queue until start is called).
func newStopped(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:    cfg,
		queue:  make(chan *Future, cfg.QueueLimit),
		execCh: make(chan []*Future, cfg.Executors),
	}
}

// start launches the batcher and the executor pool.
func (s *Server) start() {
	s.wg.Add(1 + s.cfg.Executors)
	go s.batchLoop()
	for i := 0; i < s.cfg.Executors; i++ {
		go s.execLoop()
	}
}

// SubmitAsync enqueues a scan request and returns a Future. The data
// slice is retained until the batch executes; callers must not mutate
// it before Wait returns. Returns ErrOverloaded when the queue is full,
// ErrClosed after Close, ErrBadRequest for an invalid Spec.
func (s *Server) SubmitAsync(spec Spec, data []int64) (*Future, error) {
	if !spec.valid() {
		s.stats.rejected.Add(1)
		return nil, fmt.Errorf("%w: invalid spec %+v", ErrBadRequest, spec)
	}
	f := &Future{spec: spec, data: data, done: make(chan struct{})}
	if len(data) == 0 {
		// Nothing to scan; resolve without a server round trip so empty
		// requests can never occupy batch slots.
		f.res = []int64{}
		close(f.done)
		s.stats.requests.Add(1)
		return f, nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		s.stats.rejected.Add(1)
		return nil, ErrClosed
	}
	select {
	case s.queue <- f:
		s.stats.requests.Add(1)
		return f, nil
	default:
		s.stats.rejected.Add(1)
		return nil, ErrOverloaded
	}
}

// Submit is the synchronous convenience form: SubmitAsync then Wait.
func (s *Server) Submit(spec Spec, data []int64) ([]int64, error) {
	f, err := s.SubmitAsync(spec, data)
	if err != nil {
		return nil, err
	}
	return f.Wait()
}

// Close stops accepting new requests, drains everything already queued
// (every accepted Future resolves), waits for the batcher and executors
// to exit, and returns. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// batchLoop is the single goroutine that owns batch assembly. The
// policy is adaptive: fuse greedily (everything already queued joins);
// below the fill target, yield the processor so runnable submitters
// can enqueue, and flush once a yield surfaces nothing new or the
// window is spent. Fusion therefore tracks the offered concurrency
// with no timer parking — Go timer wakeups cost milliseconds on a
// loaded box, far more than the scans being fused — while the element
// and request caps still bound each kernel pass.
func (s *Server) batchLoop() {
	defer func() {
		close(s.execCh)
		s.wg.Done()
	}()
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		batch := []*Future{first}
		elems := len(first.data)
		draining := false
		sizeAtYield := -1
		var deadline time.Time
	assemble:
		for elems < s.cfg.MaxBatchElems && len(batch) < s.cfg.MaxBatchRequests {
			// Greedy: take whatever is already queued.
			select {
			case f, ok := <-s.queue:
				if !ok {
					draining = true
					break assemble
				}
				batch = append(batch, f)
				elems += len(f.data)
				continue
			default:
			}
			// Queue empty. Flush, unless the batch is below the fill
			// target and yielding is still making progress.
			if len(batch) >= s.cfg.MinBatchRequests || s.cfg.MaxWait <= 0 {
				break assemble
			}
			if sizeAtYield == len(batch) {
				// The last yield surfaced nothing: no submitter is
				// runnable, so more waiting buys occupancy only at the
				// price of parked latency. Flush.
				break assemble
			}
			now := time.Now()
			if deadline.IsZero() {
				deadline = now.Add(s.cfg.MaxWait)
			} else if now.After(deadline) {
				break assemble
			}
			sizeAtYield = len(batch)
			runtime.Gosched()
		}
		s.execCh <- batch
		if draining {
			return
		}
	}
}

// execLoop runs batches handed over by the batcher until the channel
// closes at shutdown.
func (s *Server) execLoop() {
	defer s.wg.Done()
	for batch := range s.execCh {
		s.runBatch(batch)
	}
}

// identity returns the identity element of the request's monoid, which
// exclusive results surface directly (dst[0] for forward scans).
func identity(op Op) int64 {
	switch op {
	case OpMax:
		return math.MinInt64
	case OpMin:
		return math.MaxInt64
	case OpMul:
		return 1
	}
	return 0
}
