//go:build !race

package serve

// raceEnabled reports that this test binary was built with -race.
const raceEnabled = false
