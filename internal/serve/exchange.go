package serve

// Worker-side exchange data plane (DESIGN.md §10): instead of the
// coordinator pre-scanning every piece's carry serially (the star
// plane's O(n) funnel), each worker folds its own raw piece and the
// pieces run a distributed EXCLUSIVE scan over the block sums among
// themselves — the paper's Fig 10 block-sum stitch, decentralized the
// way Träff's MPI_Exscan constructions decentralize it.
//
// Participants are PIECES, not workers (one worker usually hosts
// several ranks; messages between co-hosted ranks short-circuit through
// the local mailbox). Rank order is scan order: piece index for forward
// scans, reversed for backward. Each rank r contributes a pair
//
//	c_r = (value, reset)
//
// where value is the piece's fold (identity for a backward piece that
// opens at a segment head) and reset marks a segment head, combined
// with the associative operator
//
//	(v1,r1) ⊗ (v2,r2) = (r2 ? v2 : v1·v2, r1 ∨ r2)
//
// — a head to the right wipes everything left of it, exactly like the
// coordinator's serial seed chain. The ranks compute the exclusive
// prefix C_r = c_0 ⊗ … ⊗ c_{r-1} with the standard hypercube scan:
// ceil(log2 k) rounds; in round j, rank r swaps its running subcube
// total T with partner r XOR 2^j and folds the partner's T into C when
// the partner is below it. Ranks whose partner id is ≥ k skip the
// round (the virtual partner holds the identity). The piece's seed is
// then C.value, seeded with the request's Init when no head intervened,
// and the piece applies it by scanning [seed, data...] (mirrored for
// backward) through its own backend and dropping the phantom element —
// the very same pre-seeded-payload trick the star plane uses, so the
// results are bit-identical.
//
// The star chain folds new values on the LEFT for backward scans while
// ⊗ always folds on the RIGHT; the two agree because every BUILTIN op
// (+, ×, max, min over wrapping int64) is commutative. User combine ops
// (internal/combine) are only required to be associative, so the
// exchange plane accepts them FORWARD only — the coordinator routes
// backward user scans straight to the star plane, and a worker handed
// one anyway answers bad_request. Forward user pieces fold their block
// sums and ⊗ with the op's VM program, resolved (and hash-verified)
// against this worker's own registry: a coordinator pins the content
// hash on every piece, so a worker holding a stale or missing
// registration answers the typed op_hash/bad_request and the
// coordinator re-pushes and retries (then falls back to star).
//
// Any peer failure — a round timeout, a dead peer, a canceled sibling —
// surfaces as the typed ErrXchgFailed, and the coordinator re-runs the
// whole request on the star plane.

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"scans/internal/arena"
	"scans/internal/combine"
)

// xchgKey addresses one mailbox slot: the carry message rank `rank`
// expects in round `round` of exchange `group`.
type xchgKey struct {
	group uint64
	rank  uint32
	round uint32
}

// xchgMsg is one (value, reset) pair in flight.
type xchgMsg struct {
	val   int64
	reset bool
}

// xchgSlot is a 1-buffered rendezvous: whichever side arrives first —
// the depositing peer or the awaiting participant — creates it.
type xchgSlot struct {
	ch   chan xchgMsg
	born time.Time
}

// Sweep cadence for orphaned slots (a participant died or timed out
// before consuming a deposit). Orphans are 16 bytes each, so the sweep
// only has to keep the map bounded, not race the exchange.
const (
	xchgSweepEvery = 10 * time.Second
	xchgSweepAge   = 60 * time.Second
)

// exchangeTable is a NetServer's carry-message mailbox.
type exchangeTable struct {
	mu        sync.Mutex
	slots     map[xchgKey]*xchgSlot
	lastSweep time.Time
}

func newExchangeTable() *exchangeTable {
	return &exchangeTable{slots: make(map[xchgKey]*xchgSlot), lastSweep: time.Now()}
}

// slot returns k's rendezvous, creating it if absent (t.mu held by
// caller via lockedSlot).
func (t *exchangeTable) lockedSlot(k xchgKey) *xchgSlot {
	t.mu.Lock()
	defer t.mu.Unlock()
	if now := time.Now(); now.Sub(t.lastSweep) > xchgSweepEvery {
		t.lastSweep = now
		for key, s := range t.slots {
			if now.Sub(s.born) > xchgSweepAge {
				delete(t.slots, key)
			}
		}
	}
	s := t.slots[k]
	if s == nil {
		s = &xchgSlot{ch: make(chan xchgMsg, 1), born: time.Now()}
		t.slots[k] = s
	}
	return s
}

// deposit delivers one carry message; never blocks. A duplicate for an
// already-full slot is dropped (the exchange protocol sends each
// message once; a duplicate is a stale group's leftover).
func (t *exchangeTable) deposit(k xchgKey, m xchgMsg) {
	s := t.lockedSlot(k)
	select {
	case s.ch <- m:
	default:
	}
}

// await blocks for k's message until timeout or ctx expiry. The slot is
// removed either way: on success it has served its purpose, on failure
// the group is doomed and a late deposit will be swept.
func (t *exchangeTable) await(ctx context.Context, k xchgKey, timeout time.Duration) (xchgMsg, error) {
	s := t.lockedSlot(k)
	remove := func() {
		t.mu.Lock()
		if t.slots[k] == s {
			delete(t.slots, k)
		}
		t.mu.Unlock()
	}
	tm := time.NewTimer(timeout)
	defer tm.Stop()
	select {
	case m := <-s.ch:
		remove()
		return m, nil
	case <-ctx.Done():
		remove()
		return xchgMsg{}, ctx.Err()
	case <-tm.C:
		remove()
		return xchgMsg{}, fmt.Errorf("no carry after %v", timeout)
	}
}

// peerPool caches one multiplexed Client per peer worker address.
// Dialed binary-first (degrading to JSON against an old peer); a failed
// send drops the entry so the next round redials fresh.
type peerPool struct {
	maxLine int

	mu     sync.Mutex
	clis   map[string]*Client
	closed bool
}

func newPeerPool(maxLine int) *peerPool {
	return &peerPool{maxLine: maxLine, clis: make(map[string]*Client)}
}

// get returns the pooled client for addr, dialing one if needed. The
// dial runs off-lock and is bounded by ctx, so a black-holed peer
// cannot stall every other exchange on this server.
func (p *peerPool) get(ctx context.Context, addr string) (*Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if cli := p.clis[addr]; cli != nil {
		p.mu.Unlock()
		return cli, nil
	}
	p.mu.Unlock()

	type dialRes struct {
		cli *Client
		err error
	}
	ch := make(chan dialRes, 1)
	go func() {
		cli, err := DialMaxLineProto(addr, p.maxLine, ProtoBin)
		ch <- dialRes{cli, err}
	}()
	var r dialRes
	select {
	case r = <-ch:
	case <-ctx.Done():
		go func() { // reap the straggling dial
			if r := <-ch; r.cli != nil {
				r.cli.Close()
			}
		}()
		return nil, ctx.Err()
	}
	if r.err != nil {
		return nil, r.err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		r.cli.Close()
		return nil, ErrClosed
	}
	if prev := p.clis[addr]; prev != nil {
		p.mu.Unlock()
		r.cli.Close() // lost a dial race; use the winner
		return prev, nil
	}
	p.clis[addr] = r.cli
	p.mu.Unlock()
	return r.cli, nil
}

// drop evicts addr's entry if it is still cli, and closes cli.
func (p *peerPool) drop(addr string, cli *Client) {
	p.mu.Lock()
	if p.clis[addr] == cli {
		delete(p.clis, addr)
	}
	p.mu.Unlock()
	cli.Close()
}

// close tears down every pooled connection; later gets fail typed.
func (p *peerPool) close() {
	p.mu.Lock()
	clis := p.clis
	p.clis = make(map[string]*Client)
	p.closed = true
	p.mu.Unlock()
	for _, cli := range clis {
		cli.Close()
	}
}

// xpair is the exchange's (value, reset) element.
type xpair struct {
	v int64
	r bool
}

// xcomb is the segmented-pair operator ⊗ (see the package comment):
// associative, and exactly the fold the coordinator's serial seed chain
// performs.
func xcomb(op Op, a, b xpair) xpair {
	if b.r {
		return xpair{b.v, true}
	}
	return xpair{Combine(op, a.v, b.v), a.r}
}

// xcombSpec is xcomb generalized to bound user ops: the value half runs
// the op's VM program (which can fail — budget blowout on pathological
// carries), builtins take the infallible fast path.
func xcombSpec(spec Spec, fr *combine.Frame, a, b xpair) (xpair, error) {
	if b.r {
		return xpair{b.v, true}, nil
	}
	v, err := CombineSpec(spec, fr, a.v, b.v)
	if err != nil {
		return xpair{}, err
	}
	return xpair{v, a.r}, nil
}

// XchgPiece describes one piece's role in a carry exchange, for
// Client.ScanXchg: the group id, the piece's rank, every rank's worker
// address, whether the piece opens at a segment head, whether the
// exchanged carry applies to it, and rank 0's initial carry.
type XchgPiece struct {
	Group  uint64
	Rank   int
	Peers  []string
	Head   bool
	Seeded bool
	Init   int64
	// OpHash pins the user-op registration the piece must run under
	// (user ops only; 0 for builtins). The worker verifies it against
	// its own registry and answers op_hash on mismatch.
	OpHash uint64
}

// ScanXchg runs one exchange-mode piece on the server: the raw segment
// travels un-seeded, the worker exchanges block sums with its peers,
// and the response is the piece's seeded scan — bit-identical to a star
// dispatch of the same piece.
func (c *Client) ScanXchg(ctx context.Context, op, kind, dir, tenant string, data []int64, x XchgPiece) ([]int64, error) {
	req := WireRequest{
		Type: "scan_xchg", Op: op, Kind: kind, Dir: dir, Tenant: tenant, Data: data,
		Group: x.Group, Rank: x.Rank, Peers: x.Peers,
		XHead: x.Head, XSeed: x.Seeded, Init: x.Init, OpHash: x.OpHash,
	}
	resp, err := c.roundTrip(ctx, req)
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		resp.Result = []int64{}
	}
	return resp.Result, nil
}

// CarryXchg delivers one carry-exchange message to the peer this client
// is connected to: rank `from`'s running pair for round `round`,
// addressed to rank `to` of `group`. The peer acks after depositing it
// in its mailbox.
func (c *Client) CarryXchg(ctx context.Context, group uint64, round, from, to int, val int64, reset bool) error {
	_, err := c.roundTrip(ctx, WireRequest{
		Type: "carry_xchg", Group: group, Round: round, From: from, Rank: to,
		XVal: val, XReset: reset,
	})
	return err
}

// sendCarry ships rank from's running pair to rank to. Co-hosted ranks
// (same worker address) short-circuit through the local mailbox — the
// common case when one worker hosts several pieces.
func (ns *NetServer) sendCarry(ctx context.Context, group uint64, round, from, to int, peers []string, t xpair) error {
	key := xchgKey{group: group, rank: uint32(to), round: uint32(round)}
	if peers[to] == peers[from] {
		ns.xchg.deposit(key, xchgMsg{val: t.v, reset: t.r})
		return nil
	}
	cli, err := ns.peers.get(ctx, peers[to])
	if err != nil {
		return err
	}
	if err := cli.CarryXchg(ctx, group, round, from, to, t.v, t.r); err != nil {
		// Whatever went wrong, a fresh connection next round beats a
		// possibly-poisoned pooled one; carries are tiny, redials cheap.
		ns.peers.drop(peers[to], cli)
		return err
	}
	return nil
}

// serveXchgPiece is the worker half of one exchange-mode piece: fold
// the raw segment, run the hypercube carry exchange, apply the carry,
// scan, and return the caller-owned result. Any peer failure returns
// ErrXchgFailed (typed: the worker is alive) and the coordinator falls
// back to the star plane.
func (ns *NetServer) serveXchgPiece(ctx context.Context, spec Spec, req WireRequest, tenant string) ([]int64, error) {
	k := len(req.Peers)
	rank := req.Rank
	if k < 1 || rank < 0 || rank >= k {
		return nil, fmt.Errorf("%w: scan_xchg rank %d outside peer ring of %d", ErrBadRequest, rank, k)
	}
	data := req.Data
	op := spec.Op
	var fr combine.Frame
	if spec.Op == OpUser {
		// Forward only: ⊗ folds on the right while the star chain's
		// backward seed folds on the left, and a user op need not be
		// commutative (see the package comment).
		if spec.Dir == Backward {
			return nil, fmt.Errorf("%w: backward user-op scans run on the star plane only", ErrBadRequest)
		}
		rs, ok := ns.be.(OpResolver)
		if !ok {
			return nil, fmt.Errorf("%w: backend hosts no user-op registry", ErrBadRequest)
		}
		var err error
		if spec, err = rs.ResolveScanOp(spec, tenant); err != nil {
			return nil, err
		}
	}

	fold := IdentitySpec(spec)
	if spec.Op == OpUser {
		for _, v := range data {
			var err error
			if fold, err = CombineSpec(spec, &fr, fold, v); err != nil {
				return nil, err
			}
		}
	} else {
		for _, v := range data {
			fold = Combine(op, fold, v)
		}
	}
	// The piece's contribution: for a backward piece opening at a head,
	// the star chain resets to the identity AFTER seeding the pieces to
	// its left, so the head piece contributes (identity, reset).
	cv := fold
	if req.XHead && spec.Dir == Backward {
		cv = Identity(op)
	}
	T := xpair{v: cv, r: req.XHead}   // running subcube total
	C := xpair{v: IdentitySpec(spec)} // exclusive prefix of lower ranks

	timeout := ns.ncfg.XchgRoundTimeout
	rounds := bits.Len(uint(k - 1))
	for j := 0; j < rounds; j++ {
		partner := rank ^ (1 << j)
		if partner >= k {
			continue // virtual partner: holds the identity, nothing to swap
		}
		rctx, cancel := context.WithTimeout(ctx, timeout)
		ns.fpXchgSlow.Sleep()
		if ns.fpXchgDrop.Fire() {
			// Chaos: "lose" our half of the swap. The partner's await
			// times out and its coordinator falls back to star.
		} else if err := ns.sendCarry(rctx, req.Group, j, rank, partner, req.Peers, T); err != nil {
			cancel()
			return nil, fmt.Errorf("%w: round %d send to rank %d: %v", ErrXchgFailed, j, partner, err)
		}
		m, err := ns.xchg.await(rctx, xchgKey{group: req.Group, rank: uint32(rank), round: uint32(j)}, timeout)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("%w: round %d await from rank %d: %v", ErrXchgFailed, j, partner, err)
		}
		P := xpair{v: m.val, r: m.reset}
		var cerr error
		if partner < rank {
			// The partner's subcube sits immediately below ours in rank
			// order: it joins the exclusive prefix and prepends the total.
			if C, cerr = xcombSpec(spec, &fr, P, C); cerr == nil {
				T, cerr = xcombSpec(spec, &fr, P, T)
			}
		} else {
			T, cerr = xcombSpec(spec, &fr, T, P)
		}
		if cerr != nil {
			return nil, cerr
		}
	}

	if !req.XSeed {
		// The carry does not apply (piece 0 of an unseeded scan, a
		// forward piece at a head, or a backward piece whose right edge
		// is a head): scan the raw segment. The exchange still ran — the
		// peers needed this piece's block sum.
		return ns.be.Scan(ctx, spec, data, tenant)
	}
	seed := C.v
	if !C.r {
		var err error
		if seed, err = CombineSpec(spec, &fr, req.Init, C.v); err != nil {
			return nil, err
		}
	}
	// Apply by the star plane's phantom-element trick, through our own
	// backend so the piece fuses into batches like any other request:
	// scan [seed, data...] (mirrored for backward) and drop the phantom.
	payload := arena.GetInt64s(len(data) + 1)
	if spec.Dir == Backward {
		copy(payload, data)
		payload[len(data)] = seed
	} else {
		payload[0] = seed
		copy(payload[1:], data)
	}
	res, err := ns.be.Scan(ctx, spec, payload, tenant)
	arena.PutInt64s(payload)
	if err != nil {
		return nil, err
	}
	if len(res) != len(data)+1 {
		releaseData(res)
		return nil, fmt.Errorf("%w: seeded piece scan returned %d results for %d elements", ErrInternal, len(res), len(data)+1)
	}
	// Copy rather than subslice: a subslice would lose the arena
	// buffer's Put-able base pointer.
	out := arena.GetInt64s(len(data))
	if spec.Dir == Backward {
		copy(out, res[:len(data)])
	} else {
		copy(out, res[1:])
	}
	releaseData(res)
	return out, nil
}
