package serve

import "context"

// Backend is what the TCP front end (NetServer) fronts: anything that
// can run one scan to completion and host streaming sessions. Two
// implementations exist — *Server, the in-process batching engine, and
// cluster.Coordinator, which shards each scan across remote scansd
// workers — so the whole wire layer (framing, error codes, line
// budgets, float64 mapping, stream session tables) is written once and
// serves both single-node and cluster deployments.
type Backend interface {
	// Scan runs one scan over data and returns the full result vector.
	// Errors wrap this package's typed sentinels (ErrOverloaded,
	// ErrBadRequest, ErrShardFailed, ...) so the wire layer can code
	// them.
	Scan(ctx context.Context, spec Spec, data []int64, tenant string) ([]int64, error)
	// OpenScanStream starts a streaming session for spec (forward specs
	// only; backward opens fail with ErrStreamUnsupported).
	OpenScanStream(spec Spec, tenant string) (ScanStream, error)
	// Close drains the backend; in-flight work resolves, new work is
	// refused with ErrClosed.
	Close()
}

// ScanStream is one streaming scan session as the wire session table
// (netstream.go) drives it: Push chunks in order, then exactly one of
// Close (clean, returns the total), Abort (connection teardown), or
// Expire (idle TTL).
type ScanStream interface {
	Push(ctx context.Context, chunk []int64) ([]int64, error)
	Close() (int64, error)
	Abort(cause error)
	Expire()
}

// OpenScanStream adapts OpenStream to the Backend interface. The
// indirection (rather than returning *Stream directly) keeps a nil
// *Stream from becoming a non-nil ScanStream interface on the error
// path.
func (s *Server) OpenScanStream(spec Spec, tenant string) (ScanStream, error) {
	st, err := s.OpenStream(spec, tenant)
	if err != nil {
		return nil, err
	}
	return st, nil
}
