package serve

import "context"

// Backend is what the TCP front end (NetServer) fronts: anything that
// can run one scan to completion and host streaming sessions. Two
// implementations exist — *Server, the in-process batching engine, and
// cluster.Coordinator, which shards each scan across remote scansd
// workers — so the whole wire layer (framing, error codes, line
// budgets, float64 mapping, stream session tables) is written once and
// serves both single-node and cluster deployments.
type Backend interface {
	// Scan runs one scan over data and returns the full result vector.
	// Errors wrap this package's typed sentinels (ErrOverloaded,
	// ErrBadRequest, ErrShardFailed, ...) so the wire layer can code
	// them.
	Scan(ctx context.Context, spec Spec, data []int64, tenant string) ([]int64, error)
	// OpenScanStream starts a streaming session for spec (forward specs
	// only; backward opens fail with ErrStreamUnsupported).
	OpenScanStream(spec Spec, tenant string) (ScanStream, error)
	// Close drains the backend; in-flight work resolves, new work is
	// refused with ErrClosed.
	Close()
}

// ScanStream is one streaming scan session as the wire session table
// (netstream.go) drives it: Push chunks in order, then exactly one of
// Close (clean, returns the total), Abort (connection teardown), or
// Expire (idle TTL).
type ScanStream interface {
	Push(ctx context.Context, chunk []int64) ([]int64, error)
	Close() (int64, error)
	Abort(cause error)
	Expire()
}

// Announcer is the optional backend extension behind the "heartbeat"
// wire message: a backend that maintains a dynamic worker fleet (the
// cluster coordinator). addr is the worker's dialable address, weight
// its relative capacity, proto the wire protocol to dial it with
// ("json"/"bin", "" = the backend's default), maxLine its line budget
// (0 = default). A backend that does not implement Announcer answers
// heartbeats with bad_request.
type Announcer interface {
	Announce(addr string, weight float64, proto string, maxLine int) error
}

// OpRegistrar is the optional backend extension behind the
// "register_op" wire message: a backend that hosts a tenant-scoped
// user combine-op registry (internal/combine). RegisterScanOp
// validates source as a monoid and installs it under (tenant, name),
// returning the registration's content hash; rejections wrap ErrBadOp.
// Both *Server and the cluster coordinator implement it (the
// coordinator also propagates accepted registrations to its workers).
// A backend that does not implement OpRegistrar answers register_op
// with bad_request.
type OpRegistrar interface {
	RegisterScanOp(tenant, name, source string) (hash uint64, err error)
}

// OpResolver is the backend capability the worker-side exchange plane
// needs for user combine ops: bind spec's "user:<name>" to the live
// registration (verifying a pinned hash — ErrOpHash on mismatch) so the
// exchange's own block-sum folds can run the op's VM program. Width-1
// ops only: the exchanged carries are scalars.
type OpResolver interface {
	ResolveScanOp(spec Spec, tenant string) (Spec, error)
}

// StreamResumer is the optional backend extension behind the
// "stream_resume" wire message: a backend whose stream sessions survive
// their carrying connection (the cluster coordinator, whose session
// records also replicate to a standby). lastAcked is the count of chunk
// responses the client has received; the backend rolls the session back
// to that point and returns the re-attached stream plus resumeFrom, the
// 1-based index of the next chunk it expects (≤ lastAcked+1 — strictly
// smaller when the backend is a standby whose replica lagged the
// primary's acks, in which case the client must rewind and resend).
type StreamResumer interface {
	ResumeScanStream(token string, lastAcked uint64) (st ScanStream, resumeFrom uint64, err error)
}

// TokenStream is the optional ScanStream extension marking a session as
// resumable: the wire layer puts the token in the stream-open ack so the
// client can re-attach via StreamResumer after a failure. Plain *Server
// streams are not resumable (their carry dies with the server).
type TokenStream interface {
	ResumeToken() string
}

// OpenScanStream adapts OpenStream to the Backend interface. The
// indirection (rather than returning *Stream directly) keeps a nil
// *Stream from becoming a non-nil ScanStream interface on the error
// path.
func (s *Server) OpenScanStream(spec Spec, tenant string) (ScanStream, error) {
	st, err := s.OpenStream(spec, tenant)
	if err != nil {
		return nil, err
	}
	return st, nil
}
