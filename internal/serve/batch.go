package serve

import (
	"errors"
	"fmt"
	"math"

	"scans/internal/arena"
	"scans/internal/combine"
	"scans/internal/scan"
)

// runBatch executes one fused batch: group the requests by Spec and run
// ONE segmented kernel pass per group, handing each request its own
// arena-backed output buffer. This is the §3 argument operationalized:
// K small scans of the same flavor cost one primitive pass over their
// concatenation.
//
// The zero-copy path never materializes that concatenation. Each
// request's payload becomes a scan.View — {Dst, Src, Carry, Seeded} —
// and the view kernels run the blocked parallel pass directly over the
// request-owned buffers, stitching per-view carries exactly as Figure
// 10's block sums stitch blocks. Compared to the flatten path this PR
// replaced (kept below as runGroupFlatten for benchmarking), the fused
// src/flags staging copies and their allocations are gone; the only
// per-request buffer is the result the caller receives, and that comes
// from the arena.
//
// Each group's kernel pass runs behind a recover barrier: a panicking
// kernel (or an armed fault.KernelPanic point) fails that group's
// futures with ErrInternal and the other groups — and the server —
// carry on.
func (s *Server) runBatch(sc *execScratch, batch []*Future) {
	// Group while preserving arrival order within each group. The
	// scratch map and order slice are owned by this executor and reused
	// batch to batch; per-spec slices keep their capacity across resets.
	sc.order = sc.order[:0]
	for _, f := range batch {
		g := sc.groups[f.spec]
		if len(g) == 0 {
			sc.order = append(sc.order, f.spec)
		}
		sc.groups[f.spec] = append(g, f)
	}
	elems := 0
	for _, spec := range sc.order {
		reqs := sc.groups[spec]
		elems += s.runGroupSafe(sc, spec, reqs)
		clear(reqs) // drop future pointers so recycled futures aren't pinned
		sc.groups[spec] = reqs[:0]
	}
	s.stats.record(len(batch), len(sc.order), elems)
}

// execScratch is one executor's reusable batch-assembly state: the
// spec-grouping map, the group order, and the view list handed to the
// kernels. Hoisting these out of runBatch keeps steady-state batches
// allocation-free.
type execScratch struct {
	groups map[Spec][]*Future
	order  []Spec
	views  []scan.View[int64]
	// vec is the lane-blocked engine's register scratch, created on the
	// first vector-dispatched user-op group this executor serves and
	// reused forever after — vector lane blocks never touch the GC.
	vec *combine.VecScratch
}

func newExecScratch() *execScratch {
	return &execScratch{groups: make(map[Spec][]*Future, 8)}
}

// runGroupSafe wraps one group's kernel pass in a recover barrier so a
// panic is confined to that group's futures. Output buffers already
// staged in the scratch views go back to the arena — none were
// delivered, because the scatter loop only runs after the whole kernel
// pass succeeds.
func (s *Server) runGroupSafe(sc *execScratch, spec Spec, reqs []*Future) (elems int) {
	defer func() {
		if r := recover(); r != nil {
			for i := range sc.views {
				arena.PutInt64s(sc.views[i].Dst)
			}
			clear(sc.views)
			sc.views = sc.views[:0]
			s.failBatch(reqs, r)
		}
	}()
	if s.cfg.legacyFlatten {
		return s.runGroupFlatten(spec, reqs)
	}
	return s.runGroup(sc, spec, reqs)
}

// runGroup fuses one Spec's requests into a single view-kernel pass and
// scatters the results. Returns the number of fused elements.
//
// Carry-seeded requests (stream chunks, Future.seeded) set the view's
// Carry/Seeded fields; the view kernels fold the carry in algebraically
// at the segment head (or tail, for backward scans), which is exactly
// equivalent to the old path's injected phantom element — without the
// extra slot. Streams are forward-only (OpenStream rejects Backward),
// so a seeded future never reaches a backward kernel.
func (s *Server) runGroup(sc *execScratch, spec Spec, reqs []*Future) int {
	// Chaos hooks: a slow kernel stalls here (inside the executor, so
	// queue-age shedding and deadline drops see realistic pressure); a
	// kernel panic fires past this point and is caught by runGroupSafe.
	s.fpSlow.Sleep()
	if s.fpPanic.Fire() {
		panic("fault: injected kernel panic")
	}
	if spec.Op == OpUser {
		return s.runUserGroup(sc, spec, reqs)
	}
	n, served := s.runViewsGroup(sc, spec, reqs)
	s.stats.served.Add(uint64(served))
	return n
}

// runViewsGroup stages one group's requests as views, runs a single
// native kernel pass under kspec, and scatters the results. kspec may
// differ from the futures' own Spec: promoted user ops run here under
// the builtin kernel their program is structurally equal to.
func (s *Server) runViewsGroup(sc *execScratch, kspec Spec, reqs []*Future) (n, served int) {
	sc.views = sc.views[:0]
	for _, f := range reqs {
		n += f.nelems()
		sc.views = append(sc.views, scan.View[int64]{
			Dst:    arena.GetInt64s(len(f.data)),
			Src:    f.data,
			Carry:  f.carry,
			Seeded: f.seeded,
		})
	}
	// One kernel pass for the whole group, straight over the request
	// payloads (Src) into per-request arena buffers (Dst): no fused
	// vector, no flags, no copies.
	runSegmentedViews(kspec, sc.views, s.cfg.Workers)
	for i, f := range reqs {
		if f.complete(sc.views[i].Dst, nil) {
			served++
		} else {
			// Already resolved (shed/failed elsewhere): nobody will read
			// this buffer, so it goes straight back.
			arena.PutInt64s(sc.views[i].Dst)
		}
	}
	clear(sc.views) // release Dst/Src references; buffers now owned by waiters
	sc.views = sc.views[:0]
	return n, served
}

// promotedOp maps a registration's plan promotion to the builtin Op it
// is structurally equal to.
func promotedOp(reg *combine.Registered) (Op, bool) {
	vp := reg.Plan()
	if vp == nil {
		return 0, false
	}
	switch vp.Promotion() {
	case combine.PromoteAdd:
		return OpSum, true
	case combine.PromoteMul:
		return OpMul, true
	case combine.PromoteMax:
		return OpMax, true
	case combine.PromoteMin:
		return OpMin, true
	}
	return 0, false
}

// runUserGroup serves one user-op group with the best dispatch its
// registration compiles to (combine/vector.go), cheapest first:
//
//   - native: the fused plan is structurally a builtin monoid, so the
//     whole group runs ONE native segmented kernel pass under that
//     builtin's Spec — the VM is out of the loop entirely;
//   - vector: requests of at least MinVecTuples run the lane-blocked
//     engine's blocked two-pass scan (reassociation is sound: the op
//     was validated associative at registration); smaller requests
//     keep the serial walk;
//   - scalar: programs with irreducible control flow (gcd's loop), or
//     Config.VMDispatch == "scalar", walk tuple by tuple through Exec
//     exactly as PR 9 shipped.
//
// All three produce bit-identical results (FuzzVMMatchesNative and
// FuzzVectorizedMatchesScalar pin this).
//
// Failure isolation is per REQUEST, not per group: a view whose op
// blows its step budget (ErrOpBudget, data-dependent — validation
// cannot see every input, and only the scalar path can still trip it:
// a compiled plan provably cannot fault or exceed the budget) fails
// only its own future; the rest of the group is served normally.
// Nothing here panics on VM errors, so a budget blowout never poisons
// the batch.
func (s *Server) runUserGroup(sc *execScratch, spec Spec, reqs []*Future) int {
	reg := spec.reg
	if reg == nil {
		panic("serve: runUserGroup: user op " + spec.User + " reached the executor unbound")
	}
	var vp *combine.VecPlan
	if s.cfg.vmVector() {
		if op, ok := promotedOp(reg); ok {
			kspec := Spec{Op: op, Kind: spec.Kind, Dir: spec.Dir}
			n, served := s.runViewsGroup(sc, kspec, reqs)
			s.stats.served.Add(uint64(served))
			s.stats.vmPromoted.Add(uint64(len(reqs)))
			if served > 0 {
				s.stats.recordUserServed(reg.Tenant, reg.Name, uint64(served))
			}
			return n
		}
		if vp = reg.Plan(); vp != nil && sc.vec == nil {
			sc.vec = combine.NewVecScratch()
		}
	}
	var fr combine.Frame
	w := reg.Width()
	n, served := 0, 0
	for _, f := range reqs {
		n += f.nelems()
		dst := arena.GetInt64s(len(f.data))
		var err error
		if vp != nil && len(f.data)/w >= combine.MinVecTuples {
			err = vp.ScanBlocked(sc.vec, reg.Prog, dst, f.data,
				spec.Kind == Inclusive, spec.Dir == Backward, f.carry, f.seeded)
			s.stats.vmVector.Add(1)
		} else {
			err = execUserView(reg.Prog, &fr, spec, dst, f.data, f.carry, f.seeded)
			s.stats.vmScalar.Add(1)
		}
		if err != nil {
			arena.PutInt64s(dst)
			if errors.Is(err, combine.ErrBudget) {
				s.stats.opBudgetFails.Add(1)
				err = fmt.Errorf("%w: op %q: %v", ErrOpBudget, spec.User, err)
			} else {
				err = fmt.Errorf("%w: op %q faulted: %v", ErrInternal, spec.User, err)
			}
			f.complete(nil, err)
			continue
		}
		if f.complete(dst, nil) {
			served++
		} else {
			arena.PutInt64s(dst)
		}
	}
	s.stats.served.Add(uint64(served))
	if served > 0 {
		s.stats.recordUserServed(reg.Tenant, reg.Name, uint64(served))
	}
	return n
}

// execUserView runs one request's scan with the VM combine, mirroring
// the view kernels' serial semantics (scan/views.go) at tuple stride:
// forward exclusive writes the running accumulator before folding each
// tuple in, inclusive after; backward walks from the tail with the
// element on the LEFT of the accumulator (combine(el, acc) — user
// monoids need not be commutative, so operand order is load-bearing).
// The accumulator starts at the stream carry when seeded (width 1,
// enforced at admission), else the program's identity tuple.
//
// Exec writes dst only after the program retires (a single copy off
// the VM stack), so passing acc as both combine input and destination
// is safe.
func execUserView(p *combine.Program, fr *combine.Frame, spec Spec, dst, src []int64, carry int64, seeded bool) error {
	w := p.Width
	var acc [combine.MaxWidth]int64
	copy(acc[:w], p.Identity)
	if seeded {
		acc[0] = carry
	}
	nt := len(src) / w
	if spec.Dir == Forward {
		for k := 0; k < nt; k++ {
			el := src[k*w : (k+1)*w]
			if spec.Kind == Exclusive {
				copy(dst[k*w:(k+1)*w], acc[:w])
				if err := p.Exec(fr, acc[:w], acc[:w], el); err != nil {
					return err
				}
			} else {
				if err := p.Exec(fr, acc[:w], acc[:w], el); err != nil {
					return err
				}
				copy(dst[k*w:(k+1)*w], acc[:w])
			}
		}
		return nil
	}
	for k := nt - 1; k >= 0; k-- {
		el := src[k*w : (k+1)*w]
		if spec.Kind == Exclusive {
			copy(dst[k*w:(k+1)*w], acc[:w])
			if err := p.Exec(fr, acc[:w], el, acc[:w]); err != nil {
				return err
			}
		} else {
			if err := p.Exec(fr, acc[:w], el, acc[:w]); err != nil {
				return err
			}
			copy(dst[k*w:(k+1)*w], acc[:w])
		}
	}
	return nil
}

// runSegmentedViews dispatches one fused (op, kind, direction) pass to
// the matching view kernel from internal/scan.
func runSegmentedViews(spec Spec, views []scan.View[int64], workers int) {
	switch spec.Op {
	case OpSum:
		runMonoidViews(scan.Add[int64]{}, spec, views, workers)
	case OpMul:
		runMonoidViews(scan.Mul[int64]{}, spec, views, workers)
	case OpMax:
		runMonoidViews(scan.Max[int64]{Id: math.MinInt64}, spec, views, workers)
	case OpMin:
		runMonoidViews(scan.Min[int64]{Id: math.MaxInt64}, spec, views, workers)
	default:
		panic("serve: runSegmentedViews: invalid op " + spec.Op.String())
	}
}

// runMonoidViews selects the view kernel for the spec's kind and
// direction.
func runMonoidViews[O scan.Op[int64]](op O, spec Spec, views []scan.View[int64], workers int) {
	switch {
	case spec.Dir == Forward && spec.Kind == Exclusive:
		scan.SegScanViewsExclusive(op, views, workers)
	case spec.Dir == Forward && spec.Kind == Inclusive:
		scan.SegScanViewsInclusive(op, views, workers)
	case spec.Dir == Backward && spec.Kind == Exclusive:
		scan.SegScanViewsExclusiveBackward(op, views, workers)
	default:
		scan.SegScanViewsInclusiveBackward(op, views, workers)
	}
}

// runGroupFlatten is the pre-zero-copy group path, kept verbatim as the
// benchmark baseline (Config.legacyFlatten, in-process benchmarks only
// — its results are NOT arena-backed, so it must never serve the TCP
// front end, whose handlers return every result to the arena): build
// one flat vector + segment-head flags per group, run the flat
// segmented kernel, and hand each request a disjoint subslice of the
// group's output.
func (s *Server) runGroupFlatten(spec Spec, reqs []*Future) int {
	s.fpSlow.Sleep()
	if s.fpPanic.Fire() {
		panic("fault: injected kernel panic")
	}
	n := 0
	for _, f := range reqs {
		n += f.nelems()
	}
	src := make([]int64, n)
	flags := make([]bool, n)
	pos := 0
	for _, f := range reqs {
		flags[pos] = true
		if f.seeded {
			src[pos] = f.carry
			pos++
		}
		copy(src[pos:], f.data)
		pos += len(f.data)
	}
	// One kernel pass for the whole group. dst aliases src: every
	// kernel in internal/scan supports in-place operation, and the
	// fused source is dead after the pass.
	dst := src
	runSegmented(spec, dst, src, flags, s.cfg.Workers)
	pos = 0
	served := 0
	for _, f := range reqs {
		if f.seeded {
			pos++ // skip the injected carry slot
		}
		if f.complete(dst[pos:pos+len(f.data):pos+len(f.data)], nil) {
			served++
		}
		pos += len(f.data)
	}
	s.stats.served.Add(uint64(served))
	return n
}

// runSegmented dispatches one fused (op, kind, direction) pass to the
// matching flat segmented kernel from internal/scan (legacy path).
func runSegmented(spec Spec, dst, src []int64, flags []bool, workers int) {
	switch spec.Op {
	case OpSum:
		runMonoid(scan.Add[int64]{}, spec, dst, src, flags, workers)
	case OpMul:
		runMonoid(scan.Mul[int64]{}, spec, dst, src, flags, workers)
	case OpMax:
		runMonoid(scan.Max[int64]{Id: math.MinInt64}, spec, dst, src, flags, workers)
	case OpMin:
		runMonoid(scan.Min[int64]{Id: math.MaxInt64}, spec, dst, src, flags, workers)
	default:
		panic("serve: runSegmented: invalid op " + spec.Op.String())
	}
}

// runMonoid selects the flat kernel for the spec's kind and direction.
func runMonoid[O scan.Op[int64]](op O, spec Spec, dst, src []int64, flags []bool, workers int) {
	switch {
	case spec.Dir == Forward && spec.Kind == Exclusive:
		scan.SegExclusiveParallel(op, dst, src, flags, workers)
	case spec.Dir == Forward && spec.Kind == Inclusive:
		scan.SegInclusiveParallel(op, dst, src, flags, workers)
	case spec.Dir == Backward && spec.Kind == Exclusive:
		scan.SegExclusiveBackwardParallel(op, dst, src, flags, workers)
	default:
		scan.SegInclusiveBackwardParallel(op, dst, src, flags, workers)
	}
}
