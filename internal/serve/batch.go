package serve

import (
	"math"

	"scans/internal/scan"
)

// runBatch executes one fused batch: group the requests by Spec, build
// one flat vector + segment-head flags per group, run ONE segmented
// kernel pass per group, and hand each request a disjoint subslice of
// the group's output vector. This is the §3 argument operationalized:
// K small scans of the same flavor cost one primitive pass over their
// concatenation.
//
// Each group's kernel pass runs behind a recover barrier: a panicking
// kernel (or an armed fault.KernelPanic point) fails that group's
// futures with ErrInternal and the other groups — and the server —
// carry on.
func (s *Server) runBatch(batch []*Future) {
	// Group while preserving arrival order within each group. Batches
	// are small (≤ MaxBatchRequests); a map of slices is fine.
	groups := make(map[Spec][]*Future, 4)
	order := make([]Spec, 0, 4)
	for _, f := range batch {
		if _, seen := groups[f.spec]; !seen {
			order = append(order, f.spec)
		}
		groups[f.spec] = append(groups[f.spec], f)
	}
	elems := 0
	for _, spec := range order {
		elems += s.runGroupSafe(spec, groups[spec])
	}
	s.stats.record(len(batch), len(order), elems)
}

// runGroupSafe wraps one group's kernel pass in a recover barrier so a
// panic is confined to that group's futures.
func (s *Server) runGroupSafe(spec Spec, reqs []*Future) (elems int) {
	defer func() {
		if r := recover(); r != nil {
			s.failBatch(reqs, r)
		}
	}()
	return s.runGroup(spec, reqs)
}

// runGroup fuses one Spec's requests into a single segmented scan and
// scatters the results. Returns the number of fused elements.
//
// Carry-seeded requests (stream chunks, Future.seeded) get one extra
// element: the stream's carry is injected at their segment head, ahead
// of the payload. The ordinary segmented kernels then do the stitching
// — an exclusive pass over [c, a0..an-1] yields [id, c, c⊕a0, ...] and
// an inclusive pass yields [c, c⊕a0, ...], so in both kinds the
// payload's outputs start one slot past the segment head and already
// include the carry of every earlier chunk. Streams are forward-only
// (OpenStream rejects Backward), so a seeded future never reaches a
// backward kernel where head-injection would be wrong.
func (s *Server) runGroup(spec Spec, reqs []*Future) int {
	// Chaos hooks: a slow kernel stalls here (inside the executor, so
	// queue-age shedding and deadline drops see realistic pressure); a
	// kernel panic fires past this point and is caught by runGroupSafe.
	s.fpSlow.Sleep()
	if s.fpPanic.Fire() {
		panic("fault: injected kernel panic")
	}
	n := 0
	for _, f := range reqs {
		n += f.nelems()
	}
	src := make([]int64, n)
	flags := make([]bool, n)
	pos := 0
	for _, f := range reqs {
		flags[pos] = true
		if f.seeded {
			src[pos] = f.carry
			pos++
		}
		copy(src[pos:], f.data)
		pos += len(f.data)
	}
	// One kernel pass for the whole group. dst aliases src: every
	// kernel in internal/scan supports in-place operation, and the
	// fused source is dead after the pass.
	dst := src
	runSegmented(spec, dst, src, flags, s.cfg.Workers)
	pos = 0
	served := 0
	for _, f := range reqs {
		if f.seeded {
			pos++ // skip the injected carry slot
		}
		if f.complete(dst[pos:pos+len(f.data):pos+len(f.data)], nil) {
			served++
		}
		pos += len(f.data)
	}
	s.stats.served.Add(uint64(served))
	return n
}

// runSegmented dispatches one fused (op, kind, direction) pass to the
// matching segmented kernel from internal/scan.
func runSegmented(spec Spec, dst, src []int64, flags []bool, workers int) {
	switch spec.Op {
	case OpSum:
		runMonoid(scan.Add[int64]{}, spec, dst, src, flags, workers)
	case OpMul:
		runMonoid(scan.Mul[int64]{}, spec, dst, src, flags, workers)
	case OpMax:
		runMonoid(scan.Max[int64]{Id: math.MinInt64}, spec, dst, src, flags, workers)
	case OpMin:
		runMonoid(scan.Min[int64]{Id: math.MaxInt64}, spec, dst, src, flags, workers)
	default:
		panic("serve: runSegmented: invalid op " + spec.Op.String())
	}
}

// runMonoid selects the kernel for the spec's kind and direction.
func runMonoid[O scan.Op[int64]](op O, spec Spec, dst, src []int64, flags []bool, workers int) {
	switch {
	case spec.Dir == Forward && spec.Kind == Exclusive:
		scan.SegExclusiveParallel(op, dst, src, flags, workers)
	case spec.Dir == Forward && spec.Kind == Inclusive:
		scan.SegInclusiveParallel(op, dst, src, flags, workers)
	case spec.Dir == Backward && spec.Kind == Exclusive:
		scan.SegExclusiveBackwardParallel(op, dst, src, flags, workers)
	default:
		scan.SegInclusiveBackwardParallel(op, dst, src, flags, workers)
	}
}
