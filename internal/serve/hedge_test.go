package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"
)

// TestHedgedClientFastPath: against a healthy server the hedge timer
// never fires — results are correct and no duplicates launch.
func TestHedgedClientFastPath(t *testing.T) {
	ns := startNet(t, Config{})
	for _, proto := range []string{ProtoJSON, ProtoBin} {
		hc, err := DialHedged(ns.Addr(), proto, 2*time.Second)
		if err != nil {
			t.Fatalf("%s: DialHedged: %v", proto, err)
		}
		res, err := hc.Scan("sum", "inclusive", "forward", []int64{1, 2, 3})
		if err != nil {
			t.Fatalf("%s: Scan: %v", proto, err)
		}
		if len(res) != 3 || res[2] != 6 {
			t.Fatalf("%s: got %v", proto, res)
		}
		releaseData(res)
		if s := hc.Stats(); s.Hedges != 0 || s.HedgeWins != 0 {
			t.Fatalf("%s: healthy round trip hedged: %+v", proto, s)
		}
		hc.Close()
	}
}

// hedgeTestServer is a fake JSON server whose FIRST accepted connection
// misbehaves (per breakFirst) while later connections serve normally.
// DialHedged dials primary then secondary in order, so the primary
// lands on the broken connection deterministically.
func hedgeTestServer(t *testing.T, breakFirst func(conn net.Conn, r *bufio.Reader)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		first := true
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			broken := first
			first = false
			go func() {
				defer conn.Close()
				r := bufio.NewReader(conn)
				if broken {
					breakFirst(conn, r)
					return
				}
				for {
					line, err := r.ReadString('\n')
					if err != nil {
						return
					}
					var req WireRequest
					if json.Unmarshal([]byte(line), &req) != nil {
						return
					}
					res := make([]int64, len(req.Data))
					var acc int64
					for i, v := range req.Data {
						acc += v
						res[i] = acc
					}
					out, _ := json.Marshal(WireResponse{ID: req.ID, Result: res})
					conn.Write(append(out, '\n'))
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestHedgedClientWinsOnStall: the primary connection swallows requests
// without answering; after HedgeAfter the duplicate on the secondary
// must win, and the stalled loser is reeled in before Scan returns.
func TestHedgedClientWinsOnStall(t *testing.T) {
	addr := hedgeTestServer(t, func(conn net.Conn, r *bufio.Reader) {
		// Read requests forever, answer nothing: a stalled server thread.
		for {
			if _, err := r.ReadString('\n'); err != nil {
				return
			}
		}
	})
	hc, err := DialHedged(addr, ProtoJSON, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("DialHedged: %v", err)
	}
	defer hc.Close()
	res, err := hc.Scan("sum", "inclusive", "forward", []int64{4, 5})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(res) != 2 || res[0] != 4 || res[1] != 9 {
		t.Fatalf("got %v", res)
	}
	releaseData(res)
	if s := hc.Stats(); s.Hedges != 1 || s.HedgeWins != 1 {
		t.Fatalf("want one hedge and one hedge win, got %+v", s)
	}
}

// TestHedgedClientHedgesOnConnDeath: the primary connection dies
// outright; the hedge must be promoted immediately (no timer wait) and
// the duplicate's success returned.
func TestHedgedClientHedgesOnConnDeath(t *testing.T) {
	addr := hedgeTestServer(t, func(conn net.Conn, r *bufio.Reader) {
		// Die on first contact: the first request's round trip fails at
		// the connection level.
		r.ReadString('\n')
	})
	// A long HedgeAfter proves the conn-death path doesn't wait for it.
	hc, err := DialHedged(addr, ProtoJSON, time.Hour)
	if err != nil {
		t.Fatalf("DialHedged: %v", err)
	}
	defer hc.Close()
	start := time.Now()
	res, err := hc.Scan("sum", "inclusive", "forward", []int64{7})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(res) != 1 || res[0] != 7 {
		t.Fatalf("got %v", res)
	}
	releaseData(res)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("conn-death hedge waited %v (timer path, not promotion)", elapsed)
	}
	if s := hc.Stats(); s.Hedges != 1 || s.HedgeWins != 1 {
		t.Fatalf("want one promoted hedge win, got %+v", s)
	}
}

// TestHedgedClientRequestLevelFailsFast: a typed server rejection is
// authoritative — no duplicate launches for it.
func TestHedgedClientRequestLevelFailsFast(t *testing.T) {
	ns := startNet(t, Config{})
	hc, err := DialHedged(ns.Addr(), ProtoBin, time.Hour)
	if err != nil {
		t.Fatalf("DialHedged: %v", err)
	}
	defer hc.Close()
	if _, err := hc.Scan("bogus", "inclusive", "forward", []int64{1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("got %v, want ErrBadRequest", err)
	}
	if s := hc.Stats(); s.Hedges != 0 {
		t.Fatalf("request-level rejection hedged: %+v", s)
	}
}
