package serve

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"scans/internal/arena"
)

// occBuckets is the number of power-of-two histogram buckets for batch
// occupancy (requests fused per batch). Bucket b counts batches whose
// occupancy o satisfies bits.Len(o) == b, i.e. 2^(b-1) <= o < 2^b;
// 64 buckets cover any int.
const occBuckets = 64

// stats is the server's internal counter block. All fields are atomics
// so the executor pool can record concurrently.
type stats struct {
	requests      atomic.Uint64
	rejected      atomic.Uint64
	served        atomic.Uint64
	deadlineDrops atomic.Uint64
	shed          atomic.Uint64
	panics        atomic.Uint64
	panicFailed   atomic.Uint64
	corruptDrops  atomic.Uint64
	batches       atomic.Uint64
	groups        atomic.Uint64
	fused         atomic.Uint64
	maxOcc        atomic.Uint64
	occupancy     [occBuckets]atomic.Uint64

	// Streaming session ledger (see stream.go): every opened stream
	// reaches exactly one of closed/failed/expired, and active is the
	// gauge of open ones — zero once every connection has torn down.
	streamsOpened  atomic.Uint64
	streamsClosed  atomic.Uint64
	streamsFailed  atomic.Uint64
	streamsExpired atomic.Uint64
	streamsActive  atomic.Int64

	// User combine-op ledger (internal/combine): registration outcomes,
	// serve-time step-budget failures, and per-registration serve
	// counts. The per-op map is mutex-guarded — it is touched once per
	// user-op GROUP, not per request, so it never sits on the builtin
	// hot path.
	opRegisters   atomic.Uint64
	opRejects     atomic.Uint64
	opBudgetFails atomic.Uint64
	opMu          sync.Mutex
	opServed      map[string]uint64 // "tenant:name" → requests served

	// User-op dispatch-class counters (requests, not groups): promoted
	// ops ran a native kernel pass, vector ops the lane-blocked engine,
	// scalar ops the per-element interpreter (irreducible control flow,
	// sub-MinVecTuples requests, or VMDispatch == "scalar").
	vmPromoted atomic.Uint64
	vmVector   atomic.Uint64
	vmScalar   atomic.Uint64
}

// recordUserServed bumps the per-registration serve counter.
func (st *stats) recordUserServed(tenant, name string, n uint64) {
	st.opMu.Lock()
	if st.opServed == nil {
		st.opServed = make(map[string]uint64)
	}
	st.opServed[tenant+":"+name] += n
	st.opMu.Unlock()
}

// record accounts one executed batch.
func (st *stats) record(occupancy, groups, elems int) {
	st.batches.Add(1)
	st.groups.Add(uint64(groups))
	st.fused.Add(uint64(elems))
	b := bits.Len(uint(occupancy))
	if b >= occBuckets {
		b = occBuckets - 1
	}
	st.occupancy[b].Add(1)
	for {
		cur := st.maxOcc.Load()
		if uint64(occupancy) <= cur || st.maxOcc.CompareAndSwap(cur, uint64(occupancy)) {
			return
		}
	}
}

// Stats is a point-in-time snapshot of a Server's counters, the raw
// material for EXPERIMENTS.md's fusion-efficiency numbers.
type Stats struct {
	// Requests is the number of accepted requests (including empty
	// ones resolved locally).
	Requests uint64
	// Rejected counts submissions refused at admission with
	// ErrOverloaded, ErrClosed, ErrBadRequest, or an already-expired
	// context. Rejected requests never enter the queue and are NOT
	// part of Requests.
	Rejected uint64
	// Served counts accepted requests that resolved with a result.
	Served uint64
	// DeadlineDrops counts accepted requests dropped unexecuted
	// because their context expired or was canceled while they waited
	// for a batch slot.
	DeadlineDrops uint64
	// Shed counts accepted requests dropped unexecuted because they
	// out-waited QueueAgeLimit (resolved with ErrShed).
	Shed uint64
	// Panics counts kernel panics recovered by the executor (each one
	// fails a single batch group and leaves the server running).
	Panics uint64
	// PanicFailed counts accepted requests that resolved with
	// ErrInternal because their group's kernel pass panicked.
	// Requests == Served + DeadlineDrops + Shed + PanicFailed +
	// CorruptDrops once the server has drained (every accepted request
	// gets exactly one terminal outcome).
	PanicFailed uint64
	// CorruptDrops counts accepted requests failed at batch-assembly
	// time by the queue.corrupt-detect fault point (the fail-safe
	// integrity-check path): resolved with ErrInternal, never executed.
	CorruptDrops uint64
	// Batches is the number of fused batches executed.
	Batches uint64
	// Groups is the total number of (op, kind, direction) kernel
	// passes across all batches; Groups/Batches is the fan-out of
	// flavors per batch.
	Groups uint64
	// FusedElements is the total element count pushed through the
	// segmented kernels.
	FusedElements uint64
	// P50Occupancy and P99Occupancy are the median and 99th-percentile
	// requests-per-batch, approximated from a power-of-two histogram
	// (reported as the bucket's upper bound clamped to MaxOccupancy, so
	// exact for occupancies one less than a power of two and otherwise
	// within 2×).
	P50Occupancy int
	P99Occupancy int
	// MaxOccupancy is the largest batch executed so far.
	MaxOccupancy int
	// StreamsOpened counts streaming sessions ever opened; each reaches
	// exactly one of Closed (clean stream_close), Failed (a chunk's
	// typed error or a dropped connection), or Expired (idle TTL), so
	// Opened == Closed + Failed + Expired once all connections are torn
	// down — the no-leaked-sessions ledger TestChaosSoak closes.
	StreamsOpened  uint64
	StreamsClosed  uint64
	StreamsFailed  uint64
	StreamsExpired uint64
	// StreamsActive is the gauge of currently-open sessions (0 after a
	// full drain; a positive value with no live connections is a leak).
	StreamsActive int64
	// OpRegisters counts accepted register_op submissions (including
	// idempotent re-registrations); OpRejects counts submissions that
	// failed validation or the tenant cap (ErrBadOp). OpBudgetFails
	// counts requests that failed at serve time because their user op
	// blew its step budget (ErrOpBudget).
	OpRegisters   uint64
	OpRejects     uint64
	OpBudgetFails uint64
	// VMPromotedReqs / VMVectorReqs / VMScalarReqs split user-op
	// requests by dispatch class: native-kernel promotion, the
	// lane-blocked vector engine, or the per-element scalar
	// interpreter. Their sum is the total user-op requests dispatched
	// (including ones that later failed their step budget).
	VMPromotedReqs uint64
	VMVectorReqs   uint64
	VMScalarReqs   uint64
	// UserOps maps "tenant:name" to requests served through that
	// registration (replacements under one name share the key).
	UserOps map[string]uint64
	// BytesPooled totals the payload bytes the zero-copy path served
	// from recycled arena buffers instead of fresh allocations — the
	// allocation traffic the arena absorbed. Process-wide (the arena
	// ledger is global), not per-server.
	BytesPooled uint64
	// ArenaMisses counts arena checkouts served by a fresh allocation
	// (cold pool or over-max size). A high miss rate under steady load
	// means buffers are leaking instead of circulating. Process-wide.
	ArenaMisses uint64
}

// String renders the snapshot in one line for logs.
func (s Stats) String() string {
	return fmt.Sprintf(
		"requests=%d rejected=%d served=%d deadline_drops=%d shed=%d panics=%d panic_failed=%d corrupt_drops=%d "+
			"batches=%d groups=%d fused_elems=%d occupancy{p50=%d p99=%d max=%d} "+
			"streams{open=%d closed=%d failed=%d expired=%d active=%d} "+
			"user_ops{registered=%d rejected=%d budget_fails=%d served=%d} "+
			"vm_dispatch{promoted=%d vector=%d scalar=%d} "+
			"arena{bytes_pooled=%d misses=%d}",
		s.Requests, s.Rejected, s.Served, s.DeadlineDrops, s.Shed, s.Panics, s.PanicFailed, s.CorruptDrops,
		s.Batches, s.Groups, s.FusedElements,
		s.P50Occupancy, s.P99Occupancy, s.MaxOccupancy,
		s.StreamsOpened, s.StreamsClosed, s.StreamsFailed, s.StreamsExpired, s.StreamsActive,
		s.OpRegisters, s.OpRejects, s.OpBudgetFails, s.userServedTotal(),
		s.VMPromotedReqs, s.VMVectorReqs, s.VMScalarReqs,
		s.BytesPooled, s.ArenaMisses)
}

// userServedTotal sums the per-registration serve counts.
func (s Stats) userServedTotal() uint64 {
	var t uint64
	for _, n := range s.UserOps {
		t += n
	}
	return t
}

// Stats snapshots the server's counters. Safe to call concurrently
// with traffic; the snapshot is internally consistent enough for
// monitoring (each counter is read atomically, not the set as a whole).
func (s *Server) Stats() Stats {
	st := &s.stats
	out := Stats{
		Requests:      st.requests.Load(),
		Rejected:      st.rejected.Load(),
		Served:        st.served.Load(),
		DeadlineDrops: st.deadlineDrops.Load(),
		Shed:          st.shed.Load(),
		Panics:        st.panics.Load(),
		PanicFailed:   st.panicFailed.Load(),
		CorruptDrops:  st.corruptDrops.Load(),
		Batches:       st.batches.Load(),
		Groups:        st.groups.Load(),
		FusedElements: st.fused.Load(),
		MaxOccupancy:  int(st.maxOcc.Load()),

		StreamsOpened:  st.streamsOpened.Load(),
		StreamsClosed:  st.streamsClosed.Load(),
		StreamsFailed:  st.streamsFailed.Load(),
		StreamsExpired: st.streamsExpired.Load(),
		StreamsActive:  st.streamsActive.Load(),

		OpRegisters:   st.opRegisters.Load(),
		OpRejects:     st.opRejects.Load(),
		OpBudgetFails: st.opBudgetFails.Load(),

		VMPromotedReqs: st.vmPromoted.Load(),
		VMVectorReqs:   st.vmVector.Load(),
		VMScalarReqs:   st.vmScalar.Load(),
	}
	st.opMu.Lock()
	if len(st.opServed) > 0 {
		out.UserOps = make(map[string]uint64, len(st.opServed))
		for k, v := range st.opServed {
			out.UserOps[k] = v
		}
	}
	st.opMu.Unlock()
	ac := arena.Stats()
	out.BytesPooled = ac.BytesPooled
	out.ArenaMisses = ac.Misses
	var counts [occBuckets]uint64
	total := uint64(0)
	for i := range counts {
		counts[i] = st.occupancy[i].Load()
		total += counts[i]
	}
	out.P50Occupancy = percentile(counts[:], total, 50)
	out.P99Occupancy = percentile(counts[:], total, 99)
	// Bucket upper bounds can overshoot the true maximum (occupancy 32
	// lands in bucket [32,63], reported as 63); clamp so a percentile
	// never reads above the observed max.
	if out.P50Occupancy > out.MaxOccupancy {
		out.P50Occupancy = out.MaxOccupancy
	}
	if out.P99Occupancy > out.MaxOccupancy {
		out.P99Occupancy = out.MaxOccupancy
	}
	return out
}

// percentile returns the upper bound of the first histogram bucket at
// which the cumulative count reaches q% of total (0 if no batches yet).
func percentile(counts []uint64, total uint64, q uint64) int {
	if total == 0 {
		return 0
	}
	// 1-based rank of the first batch strictly above q% of the
	// distribution, clamped into range; this makes P99 surface the tail
	// bucket rather than rounding down to the bulk.
	rank := total*q/100 + 1
	if rank > total {
		rank = total
	}
	cum := uint64(0)
	for b, c := range counts {
		cum += c
		if cum >= rank {
			if b == 0 {
				return 0
			}
			return 1<<uint(b) - 1
		}
	}
	return math.MaxInt
}
