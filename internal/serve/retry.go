package serve

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// RetryPolicy is the client-side half of the failure model: capped
// exponential backoff with jitter, applied only to errors the server
// has classified as transient. The classification mirrors the wire
// codes:
//
//   - ErrOverloaded, ErrShed — the server explicitly asked for backoff;
//     retry after a delay.
//   - ErrInternal — an isolated kernel panic failed the batch, the
//     server survived; retry.
//   - connection-level errors (torn line, dropped conn, EOF) — the
//     request's fate is unknown; retry (the service is idempotent:
//     scans are pure functions of their input).
//   - ErrBadRequest, ErrBadOp, ErrOpBudget, ErrClosed,
//     context.DeadlineExceeded, context.Canceled — retrying cannot help
//     (the request or the user op is wrong, the server is going away,
//     or the caller's time budget is spent); fail fast. ErrOpHash stays
//     retryable: a different worker may hold the right registration.
//
// The zero value is usable; Do applies defaults.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, including the first.
	// Default 4.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it. Default 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the (pre-jitter) backoff. Default 100ms.
	MaxDelay time.Duration
	// Jitter is the fraction of each delay that is randomized
	// (0 = deterministic, 1 = full jitter over [0, delay]). Randomizing
	// breaks retry synchronization: without it, every client that was
	// shed by the same overloaded batch retries in lockstep and
	// recreates the spike. Default 0.5.
	Jitter float64
}

// withDefaults fills zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	return p
}

// Retryable reports whether err is worth retrying under this policy.
func (p RetryPolicy) Retryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, ErrBadRequest),
		errors.Is(err, ErrBadOp),
		errors.Is(err, ErrOpBudget),
		errors.Is(err, ErrClosed),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return false
	}
	// ErrOverloaded, ErrShed, ErrInternal, and anything unclassified
	// (connection-level failures) are transient.
	return true
}

// Backoff returns the delay before retry number attempt (attempt 1 =
// the first retry): BaseDelay·2^(attempt-1), capped at MaxDelay, with
// the Jitter fraction randomized.
//
// The cap is applied BEFORE the shift is trusted: BaseDelay<<shift can
// wrap to an arbitrary int64 at high attempt counts — negative, zero,
// or (worst) a small positive value that a post-hoc `d <= 0` check
// waves through, collapsing backoff into a hot retry loop. The shift
// is therefore only performed when it provably fits under MaxDelay
// (BaseDelay <= MaxDelay>>shift); every other attempt is the cap.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := p.MaxDelay
	if shift := uint(attempt - 1); shift < 63 && p.BaseDelay <= p.MaxDelay>>shift {
		d = p.BaseDelay << shift
	}
	if p.Jitter > 0 {
		jit := time.Duration(float64(d) * p.Jitter)
		d = d - jit + time.Duration(rand.Int63n(int64(jit)+1))
	}
	return d
}

// Do runs fn until it succeeds, returns a non-retryable error, the
// attempt budget is spent, or ctx expires. It returns the number of
// attempts made alongside fn's final error, so callers can report
// retry counts (cmd/scanload's "retried" column).
func (p RetryPolicy) Do(ctx context.Context, fn func() error) (attempts int, err error) {
	p = p.withDefaults()
	for attempts = 1; ; attempts++ {
		err = fn()
		if err == nil || !p.Retryable(err) || attempts >= p.MaxAttempts {
			return attempts, err
		}
		select {
		case <-time.After(p.Backoff(attempts)):
		case <-ctx.Done():
			return attempts, err
		}
	}
}
