package serve

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestInt64VecCodec: the fast array codec round-trips any vector, and
// the fallback accepts standard-JSON forms the fast path rejects.
func TestInt64VecCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(200)
		v := make(Int64Vec, n)
		for i := range v {
			v[i] = rng.Int63() - rng.Int63()
		}
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var back Int64Vec
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %q: %v", b, err)
		}
		if !reflect.DeepEqual([]int64(back), []int64(v)) {
			t.Fatalf("round trip: %v != %v", back, v)
		}
	}

	// Extremes round-trip through the fast path.
	edge := Int64Vec{math.MinInt64, math.MaxInt64, 0, -1, 1}
	b, _ := json.Marshal(edge)
	var back Int64Vec
	if err := json.Unmarshal(b, &back); err != nil || !reflect.DeepEqual([]int64(back), []int64(edge)) {
		t.Fatalf("edge round trip %q -> %v (%v)", b, back, err)
	}

	// Standard-JSON forms the fast path rejects must still decode via
	// the fallback (non-Go clients may send them).
	fallback := map[string][]int64{
		`[ 1 , 2 ]`: {1, 2},
		`null`:      nil,
	}
	for in, want := range fallback {
		var v Int64Vec
		if err := json.Unmarshal([]byte(in), &v); err != nil {
			t.Fatalf("fallback %q: %v", in, err)
		}
		if !reflect.DeepEqual([]int64(v), want) {
			t.Fatalf("fallback %q = %v, want %v", in, v, want)
		}
	}

	// Garbage still errors.
	for _, in := range []string{`[1,2,"x"]`, `{"a":1}`, `[1,2,3.5]`, `[1e2]`} {
		var v Int64Vec
		if err := json.Unmarshal([]byte(in), &v); err == nil {
			t.Fatalf("unmarshal %q unexpectedly succeeded: %v", in, v)
		}
	}

	// Overflow falls back and is rejected there too (out of int64
	// range), not silently wrapped by the fast path.
	var v Int64Vec
	if err := json.Unmarshal([]byte(`[9223372036854775808]`), &v); err == nil {
		t.Fatalf("overflowing element unexpectedly accepted: %v", v)
	}
}
