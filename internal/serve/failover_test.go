package serve

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"scans/internal/arena"
)

// TestFailoverClientScan: a FailoverClient over two plain servers keeps
// serving one-shot scans when the first dies — the killed address's
// requests rotate to the second and FailedOver counts them.
func TestFailoverClientScan(t *testing.T) {
	cfg := Config{MaxWait: 50 * time.Microsecond}
	a, err := ListenNet("127.0.0.1:0", cfg, NetConfig{})
	if err != nil {
		t.Fatalf("server a: %v", err)
	}
	b, err := ListenNet("127.0.0.1:0", cfg, NetConfig{})
	if err != nil {
		t.Fatalf("server b: %v", err)
	}
	defer b.Close()

	fc, err := DialFailover(ProtoBin, 0, a.Addr(), b.Addr())
	if err != nil {
		t.Fatalf("DialFailover: %v", err)
	}
	defer fc.Close()

	ctx := context.Background()
	data := []int64{1, 2, 3, 4, 5}
	want := []int64{1, 3, 6, 10, 15}
	got, err := fc.ScanCtx(ctx, "sum", "inclusive", "", data)
	if err != nil {
		t.Fatalf("scan via primary: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("primary scan = %v, want %v", got, want)
	}
	arena.PutInt64s(got)
	if fc.FailedOver() != 0 {
		t.Fatalf("healthy primary but FailedOver=%d", fc.FailedOver())
	}

	a.Kill() // no drain — the connection just dies
	got, err = fc.ScanCtx(ctx, "sum", "inclusive", "", data)
	if err != nil {
		t.Fatalf("scan after primary kill: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("failover scan = %v, want %v", got, want)
	}
	arena.PutInt64s(got)
	if fc.FailedOver() == 0 {
		t.Fatal("served by the standby but FailedOver=0")
	}
	if fc.FirstFailoverAt().IsZero() {
		t.Fatal("FirstFailoverAt not stamped")
	}
	a.Close()

	// Typed server answers must NOT fail over: a bad request is a bad
	// request on every coordinator.
	if _, err := fc.ScanCtx(ctx, "no-such-op", "", "", data); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("bad op: %v, want bad_request (no rotation)", err)
	}
}

// TestStreamFlowControlWindow pins the windowed-credit handshake: a
// new server grants StreamWindow chunks of credit at open, the client
// surfaces it, and a long pipelined StreamScan through that window is
// bit-identical to the serial scan.
func TestStreamFlowControlWindow(t *testing.T) {
	ns, err := ListenNet("127.0.0.1:0", Config{MaxWait: 50 * time.Microsecond}, NetConfig{})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	defer ns.Close()
	cli, err := DialMaxLineProto(ns.Addr(), 0, ProtoBin)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cli.Close()

	ctx := context.Background()
	s, err := cli.OpenStream(ctx, "sum", "inclusive", "forward")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if s.Window() != StreamWindow {
		t.Fatalf("granted window %d, want %d", s.Window(), StreamWindow)
	}
	// Plain *Server sessions are not resumable; no token is advertised.
	if s.ResumeToken() != "" {
		t.Fatalf("plain server advertised resume token %q", s.ResumeToken())
	}
	if _, err := s.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Far more chunks than the window: the pipelined pump must stay
	// inside its credit and still reassemble exactly.
	n := (3*StreamWindow + 5) * 64
	data := make([]int64, n)
	want := make([]int64, n)
	var run int64
	for i := range data {
		data[i] = int64(i%23 - 11)
		run += data[i]
		want[i] = run
	}
	got, err := cli.StreamScan(ctx, "sum", "inclusive", "", data, 64)
	if err != nil {
		t.Fatalf("StreamScan: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("pipelined stream diverged from serial scan")
	}
	arena.PutInt64s(got)

	// Resume against a backend with no session durability is a typed
	// no — never a hang or a connection death.
	if _, _, err := cli.ResumeStream(ctx, "deadbeef", 0); err == nil || !connSafeTyped(err) {
		t.Fatalf("resume on plain server: %v, want a typed refusal", err)
	}
	// Heartbeats need an Announcer backend; a plain server refuses typed.
	if err := cli.Heartbeat(ctx, "127.0.0.1:1", 1, "", 0); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("heartbeat on plain server: %v, want bad_request", err)
	}
	// The connection survived both refusals.
	got, err = cli.ScanCtx(ctx, "sum", "inclusive", "", []int64{7})
	if err != nil {
		t.Fatalf("scan after typed refusals: %v", err)
	}
	arena.PutInt64s(got)
}

// connSafeTyped reports whether err is one of the typed stream answers
// a resume refusal may legally carry.
func connSafeTyped(err error) bool {
	return errors.Is(err, ErrNoStream) || errors.Is(err, ErrStreamUnsupported) || errors.Is(err, ErrBadRequest)
}
