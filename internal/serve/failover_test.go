package serve

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"scans/internal/arena"
)

// TestFailoverClientScan: a FailoverClient over two plain servers keeps
// serving one-shot scans when the first dies — the killed address's
// requests rotate to the second and FailedOver counts them.
func TestFailoverClientScan(t *testing.T) {
	cfg := Config{MaxWait: 50 * time.Microsecond}
	a, err := ListenNet("127.0.0.1:0", cfg, NetConfig{})
	if err != nil {
		t.Fatalf("server a: %v", err)
	}
	b, err := ListenNet("127.0.0.1:0", cfg, NetConfig{})
	if err != nil {
		t.Fatalf("server b: %v", err)
	}
	defer b.Close()

	fc, err := DialFailover(ProtoBin, 0, a.Addr(), b.Addr())
	if err != nil {
		t.Fatalf("DialFailover: %v", err)
	}
	defer fc.Close()

	ctx := context.Background()
	data := []int64{1, 2, 3, 4, 5}
	want := []int64{1, 3, 6, 10, 15}
	got, err := fc.ScanCtx(ctx, "sum", "inclusive", "", data)
	if err != nil {
		t.Fatalf("scan via primary: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("primary scan = %v, want %v", got, want)
	}
	arena.PutInt64s(got)
	if fc.FailedOver() != 0 {
		t.Fatalf("healthy primary but FailedOver=%d", fc.FailedOver())
	}

	a.Kill() // no drain — the connection just dies
	got, err = fc.ScanCtx(ctx, "sum", "inclusive", "", data)
	if err != nil {
		t.Fatalf("scan after primary kill: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("failover scan = %v, want %v", got, want)
	}
	arena.PutInt64s(got)
	if fc.FailedOver() == 0 {
		t.Fatal("served by the standby but FailedOver=0")
	}
	if fc.FirstFailoverAt().IsZero() {
		t.Fatal("FirstFailoverAt not stamped")
	}
	a.Close()

	// Typed server answers must NOT fail over: a bad request is a bad
	// request on every coordinator.
	if _, err := fc.ScanCtx(ctx, "no-such-op", "", "", data); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("bad op: %v, want bad_request (no rotation)", err)
	}
}

// TestStreamFlowControlWindow pins the windowed-credit handshake: a
// new server grants StreamWindow chunks of credit at open, the client
// surfaces it, and a long pipelined StreamScan through that window is
// bit-identical to the serial scan.
func TestStreamFlowControlWindow(t *testing.T) {
	ns, err := ListenNet("127.0.0.1:0", Config{MaxWait: 50 * time.Microsecond}, NetConfig{})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	defer ns.Close()
	cli, err := DialMaxLineProto(ns.Addr(), 0, ProtoBin)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cli.Close()

	ctx := context.Background()
	s, err := cli.OpenStream(ctx, "sum", "inclusive", "forward")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if s.Window() != StreamWindow {
		t.Fatalf("granted window %d, want %d", s.Window(), StreamWindow)
	}
	// Plain *Server sessions are not resumable; no token is advertised.
	if s.ResumeToken() != "" {
		t.Fatalf("plain server advertised resume token %q", s.ResumeToken())
	}
	if _, err := s.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Far more chunks than the window: the pipelined pump must stay
	// inside its credit and still reassemble exactly.
	n := (3*StreamWindow + 5) * 64
	data := make([]int64, n)
	want := make([]int64, n)
	var run int64
	for i := range data {
		data[i] = int64(i%23 - 11)
		run += data[i]
		want[i] = run
	}
	got, err := cli.StreamScan(ctx, "sum", "inclusive", "", data, 64)
	if err != nil {
		t.Fatalf("StreamScan: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("pipelined stream diverged from serial scan")
	}
	arena.PutInt64s(got)

	// Resume against a backend with no session durability is a typed
	// no — never a hang or a connection death.
	if _, _, err := cli.ResumeStream(ctx, "deadbeef", 0); err == nil || !connSafeTyped(err) {
		t.Fatalf("resume on plain server: %v, want a typed refusal", err)
	}
	// Heartbeats need an Announcer backend; a plain server refuses typed.
	if err := cli.Heartbeat(ctx, "127.0.0.1:1", 1, "", 0); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("heartbeat on plain server: %v, want bad_request", err)
	}
	// The connection survived both refusals.
	got, err = cli.ScanCtx(ctx, "sum", "inclusive", "", []int64{7})
	if err != nil {
		t.Fatalf("scan after typed refusals: %v", err)
	}
	arena.PutInt64s(got)
}

// connSafeTyped reports whether err is one of the typed stream answers
// a resume refusal may legally carry.
func connSafeTyped(err error) bool {
	return errors.Is(err, ErrNoStream) || errors.Is(err, ErrStreamUnsupported) || errors.Is(err, ErrBadRequest)
}

// TestChunkPrefixLen pins the resume-rewind arithmetic, in particular
// the final-short-chunk cases: a rewind point at or past the last
// (short) chunk must clamp to n — out[:chunkPrefixLen(...)] may only
// ever truncate, never grow past the data it covers.
func TestChunkPrefixLen(t *testing.T) {
	cases := []struct {
		k, chunkElems, n, want int
	}{
		{0, 64, 1000, 0},       // rewind to scratch
		{1, 64, 1000, 64},      // one full chunk
		{15, 64, 1000, 960},    // last full chunk before the short tail
		{16, 64, 1000, 1000},   // rewind point INSIDE the final short chunk: clamp to n
		{17, 64, 1000, 1000},   // acked beyond the stream's own chunk count: still n
		{1000, 64, 1000, 1000}, // absurd ack from a stale stream: still n
		{3, 64, 192, 192},      // exact multiple: k covers everything
		{4, 64, 192, 192},      // one past an exact multiple
		{2, 1, 5, 2},           // degenerate chunking
		{5, 1000, 3, 3},        // chunk bigger than the vector
	}
	for _, c := range cases {
		if got := chunkPrefixLen(c.k, c.chunkElems, c.n); got != c.want {
			t.Errorf("chunkPrefixLen(%d,%d,%d) = %d, want %d", c.k, c.chunkElems, c.n, got, c.want)
		}
	}
	// Monotonicity: a resume with from ≤ acked+1 can only truncate.
	for k := 0; k < 40; k++ {
		if chunkPrefixLen(k, 7, 100) > chunkPrefixLen(k+1, 7, 100) {
			t.Fatalf("chunkPrefixLen not monotone at k=%d", k)
		}
	}
}

// scriptedBackend is an in-memory resumable Backend for pinning the
// CLIENT side of stream failover deterministically: it computes forward
// sum scans serially, keeps per-session carry history so any rollback
// recomputes bit-identically, and lets a test trigger a front-end kill
// at an exact protocol point (a given chunk's Push, or Close) and
// script the resume answer (a lagging seq, or a typed no_stream).
type scriptedBackend struct {
	mu       sync.Mutex
	sessions map[string]*scriptedSession
	nextID   int

	kill        func() // typically primaryNS.Kill; fired at most once
	killOnPush  int    // 1-based chunk seq whose Push fires kill (0 = off)
	killOnClose bool   // Close fires kill
	// resumeSeq scripts ResumeScanStream's rollback point: the record
	// rolls back to this seq regardless of lastAcked (-1 = answer
	// ErrNoStream, as a coordinator whose record did not survive).
	resumeSeq int

	pushes []int // every chunk seq pushed, across all attachments
}

type scriptedSession struct {
	b     *scriptedBackend
	token string
	// carries[k] is the running carry after k chunks; rollback to seq k
	// truncates to k+1 entries and recomputation is bit-identical.
	carries []int64
}

func newScriptedBackend() *scriptedBackend {
	return &scriptedBackend{sessions: make(map[string]*scriptedSession), resumeSeq: -1}
}

func (b *scriptedBackend) Scan(ctx context.Context, spec Spec, data []int64, tenant string) ([]int64, error) {
	return nil, ErrBadRequest // streams only; keeps StreamScan off the one-shot shortcut
}

func (b *scriptedBackend) OpenScanStream(spec Spec, tenant string) (ScanStream, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	s := &scriptedSession{b: b, token: fmt.Sprintf("scripted-%d", b.nextID), carries: []int64{0}}
	b.sessions[s.token] = s
	return s, nil
}

func (b *scriptedBackend) ResumeScanStream(token string, lastAcked uint64) (ScanStream, uint64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.sessions[token]
	if s == nil || b.resumeSeq < 0 {
		return nil, 0, ErrNoStream
	}
	seq := b.resumeSeq
	if seq >= len(s.carries) {
		seq = len(s.carries) - 1
	}
	s.carries = s.carries[:seq+1]
	return s, uint64(seq) + 1, nil
}

func (b *scriptedBackend) Close() {}

func (s *scriptedSession) ResumeToken() string { return s.token }

func (s *scriptedSession) Push(ctx context.Context, chunk []int64) ([]int64, error) {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	seq := len(s.carries) // 1-based seq of this chunk
	s.b.pushes = append(s.b.pushes, seq)
	if s.b.killOnPush == seq && s.b.kill != nil {
		k := s.b.kill
		s.b.kill = nil
		k() // NetServer.Kill is safe from inside a handler
	}
	carry := s.carries[len(s.carries)-1]
	out := make([]int64, len(chunk))
	for i, v := range chunk {
		carry += v
		out[i] = carry
	}
	s.carries = append(s.carries, carry)
	return out, nil
}

func (s *scriptedSession) Close() (int64, error) {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	if s.b.killOnClose && s.b.kill != nil {
		k := s.b.kill
		s.b.kill = nil
		k()
	}
	return s.carries[len(s.carries)-1], nil
}

func (s *scriptedSession) Abort(cause error) {} // detach; record survives for resume
func (s *scriptedSession) Expire()           {}

// failoverRewindHarness runs one scripted failover StreamScan: two
// front ends over ONE scripted backend, the primary killed at the
// scripted point, and the result checked bit-for-bit against the serial
// sum. n is chosen so the FINAL CHUNK IS SHORT — the rewind arithmetic
// the sweep is pinning.
func failoverRewindHarness(t *testing.T, b *scriptedBackend, n, chunkElems int) (*scriptedBackend, *FailoverClient) {
	t.Helper()
	a, err := ListenBackend("127.0.0.1:0", b, NetConfig{})
	if err != nil {
		t.Fatalf("front end a: %v", err)
	}
	t.Cleanup(a.Kill)
	bNS, err := ListenBackend("127.0.0.1:0", b, NetConfig{})
	if err != nil {
		t.Fatalf("front end b: %v", err)
	}
	t.Cleanup(bNS.Kill)
	b.kill = a.Kill

	fc, err := DialFailover(ProtoBin, 0, a.Addr(), bNS.Addr())
	if err != nil {
		t.Fatalf("DialFailover: %v", err)
	}
	t.Cleanup(fc.Close)

	data := make([]int64, n)
	want := make([]int64, n)
	var run int64
	for i := range data {
		data[i] = int64(i%13 - 6)
		run += data[i]
		want[i] = run
	}
	got, err := fc.StreamScan(context.Background(), "sum", "inclusive", "", data, chunkElems)
	if err != nil {
		t.Fatalf("StreamScan: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("failover stream diverged from serial reference")
	}
	arena.PutInt64s(got)
	if fc.FailedOver() == 0 {
		t.Fatal("primary was killed but FailedOver=0")
	}
	return b, fc
}

// TestFailoverStreamRewindIntoShortChunk: the primary dies during
// Close, so the client holds acks for EVERY chunk — including the final
// short one — and the scripted standby's record lags. The client must
// rewind `out` to the resume point and resend; when the rewind point is
// the short chunk itself, chunkPrefixLen's clamp keeps the truncation
// inside the vector (without it, out[:k*chunkElems] panics).
func TestFailoverStreamRewindIntoShortChunk(t *testing.T) {
	const chunkElems = 64
	const n = 4*chunkElems + 17 // 5 chunks, final one short
	for _, tc := range []struct {
		name      string
		resumeSeq int
	}{
		{"lag-before-short-chunk", 4}, // resend just the short tail
		{"lag-mid-stream", 2},         // resend chunks 3..5
		{"no-lag-all-acked", 5},       // rewind point INSIDE the short chunk: pure clamp
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := newScriptedBackend()
			b.killOnClose = true
			b.resumeSeq = tc.resumeSeq
			b, fc := failoverRewindHarness(t, b, n, chunkElems)
			if fc.Resumed() == 0 {
				t.Fatal("scripted resume never happened")
			}
			// Chunks 1..5 once, then the resent suffix after the rollback.
			want := []int{1, 2, 3, 4, 5}
			for k := tc.resumeSeq + 1; k <= 5; k++ {
				want = append(want, k)
			}
			if !reflect.DeepEqual(b.pushes, want) {
				t.Fatalf("push sequence %v, want %v", b.pushes, want)
			}
		})
	}
}

// TestFailoverStreamRestartAfterNoStream: the primary dies mid-stream
// and the resume answers no_stream (the record did not survive), so the
// client must restart from scratch — its stale ack count, which can
// exceed anything the fresh stream has seen, must reset along with the
// output prefix. The scan still completes bit-identically.
func TestFailoverStreamRestartAfterNoStream(t *testing.T) {
	const chunkElems = 64
	const n = 4*chunkElems + 17
	b := newScriptedBackend()
	b.killOnPush = 4 // die mid-stream, acks 1..3 (at most) delivered
	b.resumeSeq = -1 // scripted: resume answers no_stream
	b, fc := failoverRewindHarness(t, b, n, chunkElems)
	if fc.Resumed() != 0 {
		t.Fatalf("no_stream must not count as a resume: %d", fc.Resumed())
	}
	// The first attachment got chunks 1..4 (kill fired during 4's push);
	// the fresh stream must start over at chunk 1 and run to the end.
	want := []int{1, 2, 3, 4, 1, 2, 3, 4, 5}
	if !reflect.DeepEqual(b.pushes, want) {
		t.Fatalf("push sequence %v, want %v", b.pushes, want)
	}
}
