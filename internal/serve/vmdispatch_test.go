package serve

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"scans/internal/combine"
)

// Vectorized user-op dispatch through the serving layer: promotion to
// native kernels, the lane-blocked engine on large requests, scalar
// fallback on small ones and loopy programs, and bit-identity between
// every dispatch class and the forced-scalar baseline.

// dispatchPair builds a default (vector-dispatch) server and a
// forced-scalar twin, with the same op registered on both.
func dispatchPair(t *testing.T, name, source string) (vec, scal *Server) {
	t.Helper()
	vec = New(Config{MaxWait: 50 * time.Microsecond})
	t.Cleanup(func() { vec.Close() })
	scal = New(Config{MaxWait: 50 * time.Microsecond, VMDispatch: VMDispatchScalar})
	t.Cleanup(func() { scal.Close() })
	for _, s := range []*Server{vec, scal} {
		if _, err := s.RegisterScanOp("t", name, source); err != nil {
			t.Fatalf("RegisterScanOp(%s): %v", name, err)
		}
	}
	return vec, scal
}

func scanBoth(t *testing.T, vec, scal *Server, op, kind, dir string, data []int64) {
	t.Helper()
	spec, err := ParseSpec(op, kind, dir)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	ctx := context.Background()
	got, err := vec.Scan(ctx, spec, data, "t")
	if err != nil {
		t.Fatalf("%s/%s/%s vector-dispatch scan: %v", op, kind, dir, err)
	}
	want, err := scal.Scan(ctx, spec, data, "t")
	if err != nil {
		t.Fatalf("%s/%s/%s scalar-dispatch scan: %v", op, kind, dir, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s/%s/%s: vector dispatch diverged from scalar (n=%d)", op, kind, dir, len(data))
	}
}

func TestUserOpPromotionServesNative(t *testing.T) {
	// The add twin is structurally the builtin sum kernel; the default
	// config must serve it through the native path (VMPromotedReqs) and
	// agree bit-for-bit with the forced-scalar interpreter.
	vec, scal := dispatchPair(t, "add", combine.ExampleAdd)
	rng := rand.New(rand.NewSource(11))
	data := make([]int64, 4096)
	for i := range data {
		data[i] = rng.Int63() - rng.Int63()
	}
	for _, kind := range []string{"inclusive", "exclusive"} {
		for _, dir := range []string{"", "backward"} {
			scanBoth(t, vec, scal, "user:add", kind, dir, data)
		}
	}
	vs, ss := vec.Stats(), scal.Stats()
	if vs.VMPromotedReqs == 0 {
		t.Errorf("vector-dispatch server: VMPromotedReqs = 0, want > 0 (promotion not engaged)")
	}
	if vs.VMVectorReqs != 0 || vs.VMScalarReqs != 0 {
		t.Errorf("vector-dispatch server: promoted op leaked into other classes: vector=%d scalar=%d",
			vs.VMVectorReqs, vs.VMScalarReqs)
	}
	if ss.VMPromotedReqs != 0 || ss.VMVectorReqs != 0 {
		t.Errorf("scalar-dispatch server ran non-scalar classes: promoted=%d vector=%d",
			ss.VMPromotedReqs, ss.VMVectorReqs)
	}
	if ss.VMScalarReqs == 0 {
		t.Errorf("scalar-dispatch server: VMScalarReqs = 0, want > 0")
	}
}

func TestUserOpVectorServesLargeRequests(t *testing.T) {
	// satadd vectorizes (its saturation diamond lowers to a select) but
	// does not promote; large requests must take the lane-blocked
	// engine, sub-MinVecTuples ones the scalar walk — both matching
	// the forced-scalar baseline bit for bit.
	vec, scal := dispatchPair(t, "satadd", combine.ExampleSatAdd)
	rng := rand.New(rand.NewSource(12))
	big := make([]int64, 4096)
	for i := range big {
		// Mix huge uint64 magnitudes (saturation territory) with small
		// increments.
		if i%3 == 0 {
			big[i] = rng.Int63() - rng.Int63()
		} else {
			big[i] = rng.Int63n(1000)
		}
	}
	small := big[:combine.MinVecTuples-1]
	for _, kind := range []string{"inclusive", "exclusive"} {
		for _, dir := range []string{"", "backward"} {
			scanBoth(t, vec, scal, "user:satadd", kind, dir, big)
			scanBoth(t, vec, scal, "user:satadd", kind, dir, small)
		}
	}
	vs := vec.Stats()
	if vs.VMVectorReqs == 0 {
		t.Errorf("VMVectorReqs = 0, want > 0 (large requests should vector-dispatch)")
	}
	if vs.VMScalarReqs == 0 {
		t.Errorf("VMScalarReqs = 0, want > 0 (sub-MinVecTuples requests should fall back)")
	}
	if vs.VMPromotedReqs != 0 {
		t.Errorf("VMPromotedReqs = %d, want 0 (satadd is not a builtin shape)", vs.VMPromotedReqs)
	}
}

func TestUserOpLoopyProgramStaysScalar(t *testing.T) {
	// gcd's Euclid loop is irreducible control flow: every request —
	// large or not — must take the scalar interpreter, and still agree
	// with the forced-scalar server.
	vec, scal := dispatchPair(t, "gcd", combine.ExampleGCD)
	rng := rand.New(rand.NewSource(13))
	data := make([]int64, 1024)
	for i := range data {
		data[i] = rng.Int63n(1 << 30)
	}
	scanBoth(t, vec, scal, "user:gcd", "inclusive", "", data)
	vs := vec.Stats()
	if vs.VMVectorReqs != 0 || vs.VMPromotedReqs != 0 {
		t.Errorf("loopy op dispatched off-scalar: promoted=%d vector=%d", vs.VMPromotedReqs, vs.VMVectorReqs)
	}
	if vs.VMScalarReqs == 0 {
		t.Errorf("VMScalarReqs = 0, want > 0")
	}
}

func TestUserOpVectorStreamedMatchesOneShot(t *testing.T) {
	// Streamed chunks large enough to vector-dispatch: the seeded
	// ScanBlocked path (carry folded into lane 0's seed) must equal the
	// one-shot scan of the concatenation.
	ns := startNet(t, Config{MaxWait: 100 * time.Microsecond})
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.RegisterOp(context.Background(), "", "satadd", combine.ExampleSatAdd); err != nil {
		t.Fatalf("RegisterOp: %v", err)
	}
	rng := rand.New(rand.NewSource(14))
	data := make([]int64, 2048)
	for i := range data {
		data[i] = rng.Int63() - rng.Int63()
	}
	for _, kind := range []string{"inclusive", "exclusive"} {
		oneShot, err := c.ScanCtx(context.Background(), "user:satadd", kind, "", data)
		if err != nil {
			t.Fatalf("one-shot: %v", err)
		}
		// 256-element chunks: every chunk clears MinVecTuples, so each
		// runs the blocked engine with a live stream carry.
		streamed, err := c.StreamScan(context.Background(), "user:satadd", kind, "", data, 256)
		if err != nil {
			t.Fatalf("StreamScan: %v", err)
		}
		if !reflect.DeepEqual(oneShot, streamed) {
			t.Fatalf("%s: streamed vector-dispatch scan diverged from one-shot", kind)
		}
	}
}

func TestUserOpWidth2ArgmaxVectorized(t *testing.T) {
	// A width-2 tuple op through the blocked engine: argmax compiles
	// (straight-line selects), so a large request vector-dispatches at
	// tuple stride and must match the forced-scalar baseline.
	vec, scal := dispatchPair(t, "argmax", combine.ExampleArgmax)
	rng := rand.New(rand.NewSource(15))
	data := make([]int64, 2*1024) // 1024 [value, index] pairs
	for i := 0; i < len(data); i += 2 {
		data[i] = rng.Int63n(1 << 40)
		data[i+1] = int64(i / 2)
	}
	for _, kind := range []string{"inclusive", "exclusive"} {
		for _, dir := range []string{"", "backward"} {
			scanBoth(t, vec, scal, "user:argmax", kind, dir, data)
		}
	}
	if vs := vec.Stats(); vs.VMVectorReqs == 0 {
		t.Errorf("VMVectorReqs = 0, want > 0 (width-2 requests should vector-dispatch)")
	}
}
