package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"scans/internal/combine"
)

// User combine ops end-to-end through the serving layer: registration
// over both codecs, scans addressed as "user:<name>", the typed failure
// vocabulary (bad_op, op_budget, op_hash, bad_request), and the
// VM-vs-native equivalence fuzz.

// gcdRef is the reference implementation of ExampleGCD's monoid:
// binary gcd on magnitudes, abs(MinInt64) taken as 1 (the program's
// documented wrap), identity 0 exact.
func gcdRef(a, b int64) int64 {
	abs := func(x int64) int64 {
		if x == -1<<63 {
			return 1
		}
		if x < 0 {
			return -x
		}
		return x
	}
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	x, y := abs(a), abs(b)
	for y != 0 {
		x, y = y, x%y
	}
	return x
}

// scanRef computes the expected scan of data under an arbitrary scalar
// monoid, forward or backward, inclusive or exclusive.
func scanRef(data []int64, ident int64, f func(a, b int64) int64, kind Kind, dir Dir) []int64 {
	out := make([]int64, len(data))
	acc := ident
	if dir == Forward {
		for i, v := range data {
			if kind == Exclusive {
				out[i] = acc
				acc = f(acc, v)
			} else {
				acc = f(acc, v)
				out[i] = acc
			}
		}
	} else {
		for i := len(data) - 1; i >= 0; i-- {
			if kind == Exclusive {
				out[i] = acc
				acc = f(data[i], acc)
			} else {
				acc = f(data[i], acc)
				out[i] = acc
			}
		}
	}
	return out
}

func TestUserOpRegisterAndScanBothCodecs(t *testing.T) {
	ns := startNet(t, Config{MaxWait: 100 * time.Microsecond})
	data := []int64{60, 90, 42, -12, 600, 7, 30030, 0, 18}

	for _, proto := range []string{ProtoJSON, ProtoBin} {
		t.Run(proto, func(t *testing.T) {
			c, err := DialProto(ns.Addr(), proto)
			if err != nil {
				t.Fatalf("DialProto(%s): %v", proto, err)
			}
			defer c.Close()
			tenant := "codec-" + proto

			hash, err := c.RegisterOp(context.Background(), tenant, "gcd", combine.ExampleGCD)
			if err != nil {
				t.Fatalf("RegisterOp: %v", err)
			}
			if hash == 0 {
				t.Fatal("RegisterOp returned zero hash")
			}

			for _, tc := range []struct {
				kind Kind
				dir  Dir
			}{{Inclusive, Forward}, {Exclusive, Forward}, {Inclusive, Backward}, {Exclusive, Backward}} {
				got, err := c.ScanTenantCtx(context.Background(), "user:gcd", tc.kind.String(), tc.dir.String(), tenant, data)
				if err != nil {
					t.Fatalf("user:gcd %s %s: %v", tc.kind, tc.dir, err)
				}
				want := scanRef(data, 0, gcdRef, tc.kind, tc.dir)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("user:gcd %s %s = %v, want %v", tc.kind, tc.dir, got, want)
				}
			}

			// The pinned form must accept the true hash and refuse a stale one.
			if _, err := c.ScanPinned(context.Background(), "user:gcd", "", "", tenant, hash, data); err != nil {
				t.Fatalf("ScanPinned with live hash: %v", err)
			}
			if _, err := c.ScanPinned(context.Background(), "user:gcd", "", "", tenant, hash+1, data); !errors.Is(err, ErrOpHash) {
				t.Fatalf("ScanPinned with stale hash = %v, want ErrOpHash", err)
			}
		})
	}
}

func TestUserOpStreamedMatchesOneShot(t *testing.T) {
	// A streamed user-op scan must equal the one-shot scan of the
	// concatenation: the stream carry is folded with the VM.
	ns := startNet(t, Config{MaxWait: 100 * time.Microsecond})
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	// Streams run under the connection's default tenant; registering
	// with tenant "" on the same connection lands in the same bucket.
	if _, err := c.RegisterOp(context.Background(), "", "gcd", combine.ExampleGCD); err != nil {
		t.Fatalf("RegisterOp: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	data := make([]int64, 257)
	for i := range data {
		data[i] = rng.Int63n(1 << 20)
	}
	for _, kind := range []string{"inclusive", "exclusive"} {
		oneShot, err := c.ScanCtx(context.Background(), "user:gcd", kind, "", data)
		if err != nil {
			t.Fatalf("one-shot: %v", err)
		}
		streamed, err := c.StreamScan(context.Background(), "user:gcd", kind, "", data, 31)
		if err != nil {
			t.Fatalf("StreamScan: %v", err)
		}
		if !reflect.DeepEqual(oneShot, streamed) {
			t.Fatalf("%s: streamed user-op scan diverged from one-shot", kind)
		}
	}
}

func TestUserOpNonAssociativeRejectedWithCounterexample(t *testing.T) {
	ns := startNet(t, Config{})
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	_, err = c.RegisterOp(context.Background(), "t", "satadd-signed", combine.ExampleNonAssociative)
	if !errors.Is(err, ErrBadOp) {
		t.Fatalf("registering a non-associative op = %v, want ErrBadOp", err)
	}
	// The rejection must carry the concrete counterexample, not just a
	// verdict — the tenant needs the failing triple to debug the op.
	if msg := err.Error(); !strings.Contains(msg, "not associative") || !strings.Contains(msg, "x=") {
		t.Fatalf("rejection message lacks the counterexample: %q", msg)
	}
	// The connection survives a rejected registration.
	if _, err := c.Scan("sum", "", "", []int64{1, 2}); err != nil {
		t.Fatalf("scan after rejected register: %v", err)
	}
}

func TestUserOpTenantCapAndReRegistration(t *testing.T) {
	ns := startNet(t, Config{OpCap: 2})
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx := context.Background()

	h1, err := c.RegisterOp(ctx, "capped", "gcd", combine.ExampleGCD)
	if err != nil {
		t.Fatalf("register gcd: %v", err)
	}
	if _, err := c.RegisterOp(ctx, "capped", "bor", combine.ExampleBitOr); err != nil {
		t.Fatalf("register bor: %v", err)
	}
	if _, err := c.RegisterOp(ctx, "capped", "band", combine.ExampleBitAnd); !errors.Is(err, ErrBadOp) {
		t.Fatalf("third op under cap 2 = %v, want ErrBadOp", err)
	}
	// Another tenant's budget is its own.
	if _, err := c.RegisterOp(ctx, "other", "band", combine.ExampleBitAnd); err != nil {
		t.Fatalf("register band for other tenant: %v", err)
	}

	// Re-registering an existing name replaces it (no cap slot consumed)
	// and changes the content hash; scans pinned to the old hash get the
	// typed op_hash answer.
	h2, err := c.RegisterOp(ctx, "capped", "gcd", combine.ExampleBitOr)
	if err != nil {
		t.Fatalf("re-register gcd: %v", err)
	}
	if h2 == h1 {
		t.Fatal("re-registration with different source kept the same hash")
	}
	if _, err := c.ScanPinned(ctx, "user:gcd", "", "", "capped", h1, []int64{1, 2}); !errors.Is(err, ErrOpHash) {
		t.Fatalf("scan pinned to pre-re-registration hash = %v, want ErrOpHash", err)
	}
	if _, err := c.ScanPinned(ctx, "user:gcd", "", "", "capped", h2, []int64{1, 2}); err != nil {
		t.Fatalf("scan pinned to live hash: %v", err)
	}
}

func TestUserOpUnknownIsBadRequestNotBadFrame(t *testing.T) {
	// An unknown "user:<name>" must be a REQUEST-level rejection on both
	// codecs: typed bad_request, connection intact. bad_frame would tear
	// the connection down (and on the binary codec close it).
	ns := startNet(t, Config{})
	for _, tc := range []struct {
		proto string
		op    string
	}{
		{ProtoJSON, "user:nosuch"},
		{ProtoJSON, "user:"},
		{ProtoBin, "user:nosuch"},
		{ProtoBin, "user:"},
	} {
		t.Run(tc.proto+"/"+tc.op, func(t *testing.T) {
			c, err := DialProto(ns.Addr(), tc.proto)
			if err != nil {
				t.Fatalf("DialProto: %v", err)
			}
			defer c.Close()
			_, err = c.ScanTenantCtx(context.Background(), tc.op, "", "", "t", []int64{1, 2, 3})
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("%s scan of %q = %v, want ErrBadRequest", tc.proto, tc.op, err)
			}
			// The proof it was not framed as bad_frame: the same
			// connection still serves.
			if _, err := c.Scan("sum", "", "", []int64{1, 1}); err != nil {
				t.Fatalf("scan after unknown user op: %v", err)
			}
		})
	}
}

// spinOpSource loops forever when the left argument is 424242 —
// unreachable by the registration property tests (adversarial probes
// are 0/±1/min/max plus full-range randoms) but trivially reachable by
// a scan, so op_budget fires mid-batch on real data.
const spinOpSource = `
.width 1
.identity 0
	arga 0
	const 424242
	eq
	jnz spin
	arga 0
	argb 0
	add
	ret
spin:
	const 1
	jnz spin
`

func TestUserOpBudgetMidBatchIsolation(t *testing.T) {
	// One request whose data trips the op's step budget fails with the
	// typed op_budget error; concurrent requests fused into the same
	// batch group are served normally — per-request isolation, exactly
	// like a kernel panic.
	ns := startNet(t, Config{MaxWait: 2 * time.Millisecond})
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.RegisterOp(ctx, "t", "spin", spinOpSource); err != nil {
		t.Fatalf("RegisterOp(spin): %v", err)
	}

	const good = 8
	var wg sync.WaitGroup
	errs := make([]error, good+1)
	for i := 0; i < good; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := []int64{int64(i), 1, 2, 3}
			got, err := c.ScanTenantCtx(ctx, "user:spin", "inclusive", "", "t", data)
			if err != nil {
				errs[i] = err
				return
			}
			want := scanRef(data, 0, func(a, b int64) int64 { return a + b }, Inclusive, Forward)
			if !reflect.DeepEqual(got, want) {
				errs[i] = fmt.Errorf("got %v, want %v", got, want)
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The budget trips when the accumulator (left argument) hits
		// 424242: 424242 then one more element to combine with.
		_, err := c.ScanTenantCtx(ctx, "user:spin", "inclusive", "", "t", []int64{424242, 1})
		if !errors.Is(err, ErrOpBudget) {
			errs[good] = fmt.Errorf("poisoned request = %v, want ErrOpBudget", err)
		}
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	// The server survives and keeps serving the same op.
	if _, err := c.ScanTenantCtx(ctx, "user:spin", "", "", "t", []int64{5, 6}); err != nil {
		t.Fatalf("scan after budget trip: %v", err)
	}
}

func TestUserOpWidth2Argmax(t *testing.T) {
	// A 2-tuple monoid through the whole serving path: data is
	// [value, index] pairs, the scan's running tuple is the argmax so
	// far. Inclusive forward over pairs.
	ns := startNet(t, Config{MaxWait: 100 * time.Microsecond})
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.RegisterOp(ctx, "t", "argmax", combine.ExampleArgmax); err != nil {
		t.Fatalf("RegisterOp(argmax): %v", err)
	}
	// pairs: (3,0) (9,1) (9,2) (4,3)  — 9 first seen at index 1 wins ties.
	data := []int64{3, 0, 9, 1, 9, 2, 4, 3}
	got, err := c.ScanTenantCtx(ctx, "user:argmax", "inclusive", "", "t", data)
	if err != nil {
		t.Fatalf("argmax scan: %v", err)
	}
	want := []int64{3, 0, 9, 1, 9, 1, 9, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("argmax scan = %v, want %v", got, want)
	}
	// An odd element count is not a whole number of tuples.
	if _, err := c.ScanTenantCtx(ctx, "user:argmax", "", "", "t", []int64{1, 2, 3}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("ragged tuple scan = %v, want ErrBadRequest", err)
	}
}

// Bytecode twins of the builtin kernels, for the equivalence fuzz.
const (
	vmAddSource = ".width 1\n.identity 0\n\targa 0\n\targb 0\n\tadd\n"
	vmMaxSource = ".width 1\n.identity -9223372036854775808\n\targa 0\n\targb 0\n\tmax\n"
	vmMinSource = ".width 1\n.identity 9223372036854775807\n\targa 0\n\targb 0\n\tmin\n"
)

// FuzzVMMatchesNative pins the VM combine path to the native kernels:
// for every fuzzed vector, op, kind, and direction, a scan through the
// bytecode twin must be bit-identical to the builtin — including the
// carry algebra (the streamed half runs each input in chunks, which
// exercises seeded VM execution).
func FuzzVMMatchesNative(f *testing.F) {
	s := New(Config{MaxWait: 50 * time.Microsecond})
	defer s.Close()
	twins := map[Op]string{OpSum: "vmadd", OpMax: "vmmax", OpMin: "vmmin"}
	for op, name := range map[string]string{vmAddSource: "vmadd", vmMaxSource: "vmmax", vmMinSource: "vmmin"} {
		if _, err := s.RegisterScanOp("fuzz", name, op); err != nil {
			f.Fatalf("register %s: %v", name, err)
		}
	}
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(0), uint8(0))
	f.Add([]byte{255, 0, 127, 128, 1}, uint8(5), uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, opSel, mode uint8) {
		if len(raw) > 4096 {
			raw = raw[:4096]
		}
		data := make([]int64, len(raw))
		for i, b := range raw {
			// Spread the bytes across the full range so max/min see
			// sign crossings and sum sees wraparound.
			data[i] = (int64(b) - 128) << (8 * (i % 8))
		}
		ops := []Op{OpSum, OpMax, OpMin}
		op := ops[int(opSel)%len(ops)]
		kind := Inclusive
		if mode&1 != 0 {
			kind = Exclusive
		}
		dir := Forward
		if mode&2 != 0 {
			dir = Backward
		}
		ctx := context.Background()
		native, err := s.Scan(ctx, Spec{Op: op, Kind: kind, Dir: dir}, data, "fuzz")
		if err != nil {
			t.Fatalf("native scan: %v", err)
		}
		userSpec, err := ParseSpec("user:"+twins[op], kind.String(), dir.String())
		if err != nil {
			t.Fatalf("ParseSpec: %v", err)
		}
		vm, err := s.Scan(ctx, userSpec, data, "fuzz")
		if err != nil {
			t.Fatalf("vm scan: %v", err)
		}
		if !reflect.DeepEqual(native, vm) {
			t.Fatalf("%s %s %s: VM diverged from native\n data=%v\n native=%v\n vm=%v",
				op, kind, dir, data, native, vm)
		}
	})
}
