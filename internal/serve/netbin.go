package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"scans/internal/arena"
	"scans/internal/binwire"
)

// The binary codec: serve's side of the internal/binwire protocol.
// This file maps between the wire-string vocabulary the shared dispatch
// (serveConn, ParseSpec, connStreams) speaks and binwire's compact
// frames, and implements the server's per-connection writer goroutine —
// the mux half of the protocol: responses from any number of in-flight
// requests and stream workers funnel through one channel and are
// interleaved onto the socket in completion order.

// Enum byte mappings. Encoders map unknown strings to binwire.Invalid
// and decoders map unknown bytes to strings no Parse accepts, so a bad
// spec from a binary client is rejected SERVER-side with the same
// bad_request code a JSON client's would be — validation lives in one
// place (ParseSpec), not per codec.

func binOpByte(op string) byte {
	switch op {
	case "sum":
		return 0
	case "max":
		return 1
	case "min":
		return 2
	case "mul":
		return 3
	}
	return binwire.Invalid
}

func binOpString(b byte) string {
	switch b {
	case 0:
		return "sum"
	case 1:
		return "max"
	case 2:
		return "min"
	case 3:
		return "mul"
	}
	return fmt.Sprintf("bin:0x%02x", b)
}

// binOpWire is binOpString plus the user-op namespace: an OpUser byte
// decodes to the "user:<name>" wire string, so an empty or unregistered
// name is rejected by ParseSpec/resolveUserOp with bad_request — never
// bad_frame — keeping the two codecs' rejection vocabulary identical.
func binOpWire(q binwire.Request) string {
	if q.Op == binwire.OpUser {
		return "user:" + q.Name
	}
	return binOpString(q.Op)
}

func binKindByte(kind string) byte {
	switch kind {
	case "", "exclusive":
		return 0
	case "inclusive":
		return 1
	}
	return binwire.Invalid
}

func binKindString(b byte) string {
	switch b {
	case 0:
		return "exclusive"
	case 1:
		return "inclusive"
	}
	return fmt.Sprintf("bin:0x%02x", b)
}

func binDirByte(dir string) byte {
	switch dir {
	case "", "forward":
		return 0
	case "backward":
		return 1
	}
	return binwire.Invalid
}

func binDirString(b byte) string {
	switch b {
	case 0:
		return "forward"
	case 1:
		return "backward"
	}
	return fmt.Sprintf("bin:0x%02x", b)
}

func binElemByte(elem string) byte {
	switch elem {
	case "", ElemInt64:
		return binwire.ElemInt64
	case ElemFloat64:
		return binwire.ElemFloat64
	}
	return binwire.Invalid
}

func binElemString(b byte) string {
	switch b {
	case binwire.ElemInt64:
		return ElemInt64
	case binwire.ElemFloat64:
		return ElemFloat64
	}
	return fmt.Sprintf("bin:0x%02x", b)
}

func binProtoByte(proto string) byte {
	switch proto {
	case "", ProtoJSON:
		return 0
	case ProtoBin:
		return 1
	}
	return binwire.Invalid
}

func binProtoString(b byte) string {
	switch b {
	case 0:
		return ProtoJSON
	case 1:
		return ProtoBin
	}
	return fmt.Sprintf("bin:0x%02x", b)
}

// wireFromBin lifts a decoded binary request into the WireRequest form
// the shared dispatch consumes. Ownership of the arena-backed Data
// moves with it.
func wireFromBin(q binwire.Request) WireRequest {
	req := WireRequest{
		ID:        q.ID,
		Stream:    q.Stream,
		TimeoutMS: q.TimeoutMS,
		Tenant:    q.Tenant,
		Data:      q.Data,
		FData:     q.FData,
	}
	switch q.Type {
	case binwire.FScan:
		req.Type = ""
	case binwire.FStreamOpen:
		req.Type = "stream_open"
	case binwire.FStreamOpen2:
		req.Type = "stream_open"
		req.WantAck = true
	case binwire.FStreamChunk:
		req.Type = "stream_chunk"
	case binwire.FStreamClose:
		req.Type = "stream_close"
	case binwire.FStreamResume:
		req.Type = "stream_resume"
		req.Resume = q.Token
		req.Seq = q.Acked
	case binwire.FHeartbeat:
		req.Type = "heartbeat"
		req.Addr = q.Addr
		req.Weight = q.Weight
		req.WProto = binProtoString(q.WProto)
		req.MaxLine = q.MaxLine
	case binwire.FScanXchg:
		req.Type = "scan_xchg"
		req.Op = binOpWire(q)
		req.OpHash = q.OpHash
		req.Kind = binKindString(q.Kind)
		req.Dir = binDirString(q.Dir)
		req.Group = q.Group
		req.Rank = q.Rank
		req.Peers = q.Peers
		req.XHead = q.XHead
		req.XSeed = q.XSeeded
		req.Init = q.Init
	case binwire.FCarryXchg:
		req.Type = "carry_xchg"
		req.Group = q.Group
		req.Round = q.Round
		req.From = q.From
		req.Rank = q.Rank
		req.XVal = q.XVal
		req.XReset = q.XReset
	case binwire.FRegisterOp:
		req.Type = "register_op"
		req.Name = q.Name
		req.Source = q.Source
	}
	if q.Type == binwire.FScan || q.Type == binwire.FStreamOpen || q.Type == binwire.FStreamOpen2 {
		req.Op = binOpWire(q)
		req.OpHash = q.OpHash
		req.Kind = binKindString(q.Kind)
		req.Dir = binDirString(q.Dir)
		req.Elem = binElemString(q.Elem)
	}
	return req
}

// binRespQueueDepth buffers the writer's channel: deep enough that the
// common burst of completions (a fused batch resolving many of this
// connection's futures at once) rarely blocks a responder on the
// socket, shallow enough to bound per-connection memory.
const binRespQueueDepth = 64

// binConn is the binary codec for one server connection.
type binConn struct {
	ns   *NetServer
	conn net.Conn
	r    *bufio.Reader

	out   chan []byte // encoded arena-backed frames, closed by finish
	wdone chan struct{}
}

func newBinConn(ns *NetServer, conn net.Conn, r *bufio.Reader) *binConn {
	b := &binConn{
		ns:    ns,
		conn:  conn,
		r:     r,
		out:   make(chan []byte, binRespQueueDepth),
		wdone: make(chan struct{}),
	}
	go b.writeLoop()
	return b
}

// Binary results are 8 bytes per element plus a fixed header — exact,
// not a digit worst case. A response can therefore never outgrow a
// budget its request fit inside, so unlike the JSON codec the
// too_large response gate effectively never fires for binary one-shots.
func (b *binConn) worstResp(n int) int      { return binwire.ResultFrameBytes(n) }
func (b *binConn) worstRespFloat(n int) int { return binwire.ResultFrameBytes(n) }

// respond encodes one response into an arena buffer and hands it to the
// writer goroutine. Never blocks indefinitely on a dead connection: the
// writer drains the channel unconditionally until finish closes it.
func (b *binConn) respond(resp WireResponse) {
	var frame []byte
	switch {
	case resp.Error != "" || resp.Code != "":
		frame = arena.GetBytes(binwire.ErrorFrameBytes(resp.Code, resp.Error))[:0]
		frame = binwire.AppendError(frame, resp.ID, resp.Code, resp.Error)
	case resp.Resume != "" || resp.Seq != nil || resp.Window != 0:
		// Extended stream ack. Only reaches the wire for clients that
		// opted in (FStreamOpen2 / FStreamResume set req.WantAck); a plain
		// FStreamOpen still gets the empty-FResult ack below, so old
		// binary clients never see an FAck they cannot parse.
		var seq uint64
		if resp.Seq != nil {
			seq = *resp.Seq
		}
		frame = arena.GetBytes(binwire.AckFrameBytes(resp.Resume))[:0]
		frame = binwire.AppendAck(frame, resp.ID, seq, resp.Window, resp.Resume)
	case resp.OpHash != 0:
		frame = arena.GetBytes(binwire.OpAckFrameBytes())[:0]
		frame = binwire.AppendOpAck(frame, resp.ID, resp.OpHash)
	case resp.Total != nil:
		frame = arena.GetBytes(binwire.TotalFrameBytes())[:0]
		frame = binwire.AppendTotal(frame, resp.ID, *resp.Total)
	case resp.FResult != nil:
		frame = arena.GetBytes(binwire.ResultFrameBytes(len(resp.FResult)))[:0]
		frame = binwire.AppendFloatResult(frame, resp.ID, resp.FResult)
	default:
		frame = arena.GetBytes(binwire.ResultFrameBytes(len(resp.Result)))[:0]
		frame = binwire.AppendResult(frame, resp.ID, resp.Result)
	}
	b.out <- frame
}

// writeLoop is the connection's single writer: it interleaves response
// frames in completion order, applies the write deadline, and hosts the
// frame-level chaos points. After any write failure (or a fired chaos
// kill) it keeps draining the channel and recycling buffers, so
// responders never block on a dead connection and the arena ledger
// still closes.
func (b *binConn) writeLoop() {
	defer close(b.wdone)
	w := bufio.NewWriterSize(b.conn, 64<<10)
	dead := false
	for frame := range b.out {
		if dead {
			arena.PutBytes(frame)
			continue
		}
		if b.ns.ncfg.WriteTimeout > 0 {
			b.conn.SetWriteDeadline(time.Now().Add(b.ns.ncfg.WriteTimeout))
		}
		switch {
		case b.ns.fpWireCorrupt.Fire():
			// Chaos: flip bits in the length prefix, emit the damaged
			// frame, and kill the connection (the declared length now
			// lies, so leaving the conn open could strand the client
			// mid-ReadFull waiting for bytes that will never come).
			frame[0] ^= 0xA5
			frame[3] ^= 0x11
			w.Write(frame)
			w.Flush()
			b.conn.Close()
			dead = true
		case b.ns.fpWireTrunc.Fire() || b.ns.fpPartial.Fire():
			// Chaos: tear the frame mid-write and kill the connection —
			// the binary analogue of conn.partialwrite, which also fires
			// here so existing chaos configs cover both codecs.
			w.Write(frame[:len(frame)/2])
			w.Flush()
			b.conn.Close()
			dead = true
		default:
			_, err := w.Write(frame)
			if err == nil {
				err = w.Flush()
			}
			if err != nil {
				b.conn.Close()
				dead = true
			}
		}
		arena.PutBytes(frame)
	}
}

// finish closes the writer channel and waits for the writer to drain.
// serveConn calls it after every responder is done, so no send can race
// the close.
func (b *binConn) finish() {
	close(b.out)
	<-b.wdone
}

// readRequest reads and decodes the next frame. Payload-level damage
// inside an intact frame is answered bad_frame and skipped (framing is
// still in sync — the analogue of bad_json); length-level damage or an
// over-budget frame is answered (id recovered when possible) and kills
// the connection, because a binary stream cannot resynchronize.
func (b *binConn) readRequest() (WireRequest, error) {
	for {
		if b.ns.ncfg.IdleTimeout > 0 {
			b.conn.SetReadDeadline(time.Now().Add(b.ns.ncfg.IdleTimeout))
		}
		payload, err := binwire.ReadFrame(b.r, b.ns.ncfg.MaxLineBytes)
		if err != nil {
			switch {
			case errors.Is(err, binwire.ErrFrameTooBig):
				b.respond(WireResponse{
					ID:    binwire.RequestID(payload),
					Error: fmt.Sprintf("request frame exceeds %d bytes", b.ns.ncfg.MaxLineBytes),
					Code:  CodeTooLarge,
				})
			case errors.Is(err, binwire.ErrBadFrame):
				b.respond(WireResponse{Error: err.Error(), Code: CodeBadFrame})
			}
			return WireRequest{}, err
		}
		id := binwire.RequestID(payload)
		breq, perr := binwire.ParseRequest(payload)
		arena.PutBytes(payload)
		if perr != nil {
			b.respond(WireResponse{ID: id, Error: perr.Error(), Code: CodeBadFrame})
			continue
		}
		return wireFromBin(breq), nil
	}
}
