package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scans/internal/arena"
	"scans/internal/binwire"
	"scans/internal/fault"
)

// dialBinT dials the binary protocol and fails the test if negotiation
// degraded — these tests are about the binary path, so silently running
// them over JSON would be a false green.
func dialBinT(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := DialBin(addr)
	if err != nil {
		t.Fatalf("DialBin: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	if !c.Bin() {
		t.Fatal("binary dial degraded to JSON against our own server")
	}
	return c
}

// rawBinConn dials and runs the binary handshake by hand, returning the
// negotiated connection for frame-level tests.
func rawBinConn(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, r := rawConn(t, addr)
	if _, err := conn.Write([]byte(binwire.Magic)); err != nil {
		t.Fatalf("write magic: %v", err)
	}
	ack := make([]byte, len(binwire.Magic))
	if _, err := io.ReadFull(r, ack); err != nil {
		t.Fatalf("read ack: %v", err)
	}
	if string(ack) != binwire.Magic {
		t.Fatalf("bad ack %q", ack)
	}
	return conn, r
}

// readBinResp reads and decodes one response frame off a raw conn.
func readBinResp(t *testing.T, r *bufio.Reader) binwire.Response {
	t.Helper()
	payload, err := binwire.ReadFrame(r, 1<<20)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	resp, err := binwire.ParseResponse(payload)
	arena.PutBytes(payload)
	if err != nil {
		t.Fatalf("ParseResponse: %v", err)
	}
	return resp
}

// TestBinScanMatchesJSON drives every spec through a binary client and
// a JSON client against one server and requires identical results: the
// codecs are transport, not semantics.
func TestBinScanMatchesJSON(t *testing.T) {
	ns := startNet(t, Config{})
	bc := dialBinT(t, ns.Addr())
	jc, err := Dial(ns.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer jc.Close()

	rng := rand.New(rand.NewSource(11))
	for _, op := range []string{"sum", "max", "min", "mul"} {
		for _, kind := range []string{"inclusive", "exclusive"} {
			for _, dir := range []string{"forward", "backward"} {
				for _, n := range []int{0, 1, 7, 1000} {
					data := randomData(rng, n)
					bres, berr := bc.Scan(op, kind, dir, data)
					jres, jerr := jc.Scan(op, kind, dir, data)
					if (berr == nil) != (jerr == nil) {
						t.Fatalf("%s/%s/%s n=%d: bin err %v vs json err %v", op, kind, dir, n, berr, jerr)
					}
					if berr != nil {
						continue
					}
					if len(bres) != len(jres) {
						t.Fatalf("%s/%s/%s n=%d: bin %d elems vs json %d", op, kind, dir, n, len(bres), len(jres))
					}
					for i := range bres {
						if bres[i] != jres[i] {
							t.Fatalf("%s/%s/%s n=%d: element %d: bin %d vs json %d", op, kind, dir, n, i, bres[i], jres[i])
						}
					}
					releaseData(bres)
					releaseData(jres)
				}
			}
		}
	}
}

// TestBinFloatScanMatchesJSON covers the float64 payload path with the
// values JSON encodes via special tokens: results must match the JSON
// codec bitwise (NaN payloads and infinity signs included).
func TestBinFloatScanMatchesJSON(t *testing.T) {
	ns := startNet(t, Config{})
	bc := dialBinT(t, ns.Addr())
	jc, err := Dial(ns.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer jc.Close()

	// sum demands exactly-representable integers; max/min take infinities
	// (NaN has no position in the float order and is rejected — checked
	// below). Exclusive max/min scans emit the identity as ∓Inf, so both
	// directions of the special-token codec get exercised.
	inputs := map[string][]float64{
		"sum": {1, -3, 4096, 0, 1 << 51},
		"max": {1.5, math.Inf(1), -2.25, math.Inf(-1), -0.0, 1e300},
		"min": {1.5, math.Inf(1), -2.25, math.Inf(-1), -0.0, 1e300},
	}
	for op, data := range inputs {
		for _, kind := range []string{"inclusive", "exclusive"} {
			bres, berr := bc.ScanFloats(context.Background(), op, kind, "forward", data)
			jres, jerr := jc.ScanFloats(context.Background(), op, kind, "forward", data)
			if berr != nil || jerr != nil {
				t.Fatalf("%s/%s: bin err %v, json err %v", op, kind, berr, jerr)
			}
			if len(bres) != len(jres) {
				t.Fatalf("%s/%s: bin %d elems vs json %d", op, kind, len(bres), len(jres))
			}
			for i := range bres {
				if math.Float64bits(bres[i]) != math.Float64bits(jres[i]) {
					t.Fatalf("%s/%s: element %d: bin %x vs json %x", op, kind, i, math.Float64bits(bres[i]), math.Float64bits(jres[i]))
				}
			}
		}
	}
	// NaN input is rejected identically through both codecs.
	nan := []float64{1, math.NaN()}
	if _, err := bc.ScanFloats(context.Background(), "max", "inclusive", "forward", nan); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("NaN over bin: %v, want ErrBadRequest", err)
	}
	if _, err := jc.ScanFloats(context.Background(), "max", "inclusive", "forward", nan); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("NaN over json: %v, want ErrBadRequest", err)
	}
}

// TestBinStreaming runs a full streaming session (open, chunks, close
// with total) over the binary protocol, checking the carry against a
// one-shot scan of the concatenated data.
func TestBinStreaming(t *testing.T) {
	ns := startNet(t, Config{})
	bc := dialBinT(t, ns.Addr())

	ctx := context.Background()
	st, err := bc.OpenStream(ctx, "sum", "inclusive", "forward")
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	rng := rand.New(rand.NewSource(23))
	var all []int64
	for chunk := 0; chunk < 5; chunk++ {
		data := randomData(rng, 100+chunk)
		all = append(all, data...)
		res, err := st.Send(ctx, data)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		// Each chunk's output must continue the running prefix sum.
		var want int64
		for _, v := range all[:len(all)-len(data)] {
			want += v
		}
		for i, v := range data {
			want += v
			if res[i] != want {
				t.Fatalf("chunk %d element %d: got %d want %d", chunk, i, res[i], want)
			}
		}
		releaseData(res)
	}
	total, err := st.Close(ctx)
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	var want int64
	for _, v := range all {
		want += v
	}
	if total != want {
		t.Fatalf("total %d want %d", total, want)
	}

	// StreamScan exercises the same frames through the convenience path.
	data := randomData(rng, 2048)
	got, err := bc.StreamScan(ctx, "sum", "exclusive", "forward", data, 300)
	if err != nil {
		t.Fatalf("StreamScan: %v", err)
	}
	var acc int64
	for i, v := range data {
		if got[i] != acc {
			t.Fatalf("StreamScan element %d: got %d want %d", i, got[i], acc)
		}
		acc += v
	}
	releaseData(got)
}

// TestBinErrorParity: spec validation happens server-side in ParseSpec
// for both codecs, so a bad spec over binary must yield the same typed
// error a JSON client gets.
func TestBinErrorParity(t *testing.T) {
	ns := startNet(t, Config{})
	bc := dialBinT(t, ns.Addr())
	jc, err := Dial(ns.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer jc.Close()

	cases := []struct {
		name          string
		op, kind, dir string
	}{
		{"bad-op", "bogus", "inclusive", "forward"},
		{"bad-kind", "sum", "sideways", "forward"},
		{"bad-dir", "sum", "inclusive", "up"},
	}
	for _, tc := range cases {
		_, berr := bc.Scan(tc.op, tc.kind, tc.dir, []int64{1, 2})
		_, jerr := jc.Scan(tc.op, tc.kind, tc.dir, []int64{1, 2})
		if !errors.Is(berr, ErrBadRequest) {
			t.Fatalf("%s: bin error %v, want ErrBadRequest", tc.name, berr)
		}
		if !errors.Is(jerr, ErrBadRequest) {
			t.Fatalf("%s: json error %v, want ErrBadRequest", tc.name, jerr)
		}
	}
	// mul over floats is rejected (no exact float product path).
	if _, err := bc.ScanFloats(context.Background(), "mul", "inclusive", "forward", []float64{1, 2}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("float mul over bin: %v, want ErrBadRequest", err)
	}
}

// TestBinFrameTooBig: an over-budget frame gets a too_large response
// with the id salvaged from the length-prefixed ruins, then the
// connection dies — binary framing has no resync point after a length
// violation.
func TestBinFrameTooBig(t *testing.T) {
	ns := startNetCfg(t, Config{}, NetConfig{MaxLineBytes: 4096})
	bc := dialBinT(t, ns.Addr())

	_, err := bc.Scan("sum", "inclusive", "forward", make([]int64, 1024))
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversized frame: got %v, want ErrBadRequest (too_large)", err)
	}
	// The server closed the connection after answering.
	if _, err := bc.Scan("sum", "inclusive", "forward", []int64{1}); err == nil {
		t.Fatal("connection survived a length violation")
	}
}

// TestBinBadPayloadKeepsConn: payload damage inside an intact frame is
// the binary analogue of bad_json — answered and skipped, connection
// kept. The follow-up request on the same connection must still work.
func TestBinBadPayloadKeepsConn(t *testing.T) {
	ns := startNet(t, Config{})
	conn, r := rawBinConn(t, ns.Addr())

	// An intact frame whose payload declares an unknown type byte.
	bad := []byte{9, 0, 0, 0, 0x7F, 1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := conn.Write(bad); err != nil {
		t.Fatalf("write bad frame: %v", err)
	}
	resp := readBinResp(t, r)
	if resp.Type != binwire.FError || resp.Code != CodeBadFrame {
		t.Fatalf("bad payload: got %+v, want %s", resp, CodeBadFrame)
	}

	// Framing is still in sync: a valid scan on the same conn succeeds.
	frame := binwire.AppendScan(nil, 7, 0, 1, 0, binwire.ElemInt64, 0, "", []int64{1, 2, 3}, nil)
	if _, err := conn.Write(frame); err != nil {
		t.Fatalf("write good frame: %v", err)
	}
	resp = readBinResp(t, r)
	if resp.Type != binwire.FResult || resp.ID != 7 || len(resp.Result) != 3 ||
		resp.Result[0] != 1 || resp.Result[1] != 3 || resp.Result[2] != 6 {
		t.Fatalf("scan after bad payload: got %+v", resp)
	}
	releaseData(resp.Result)

	// A zero-length frame is length-level damage: answered bad_frame,
	// then the connection dies.
	if _, err := conn.Write([]byte{0, 0, 0, 0}); err != nil {
		t.Fatalf("write zero frame: %v", err)
	}
	resp = readBinResp(t, r)
	if resp.Type != binwire.FError || resp.Code != CodeBadFrame {
		t.Fatalf("zero-length frame: got %+v, want %s", resp, CodeBadFrame)
	}
	if _, err := binwire.ReadFrame(r, 1<<20); err == nil {
		t.Fatal("connection survived length-level damage")
	}
}

// TestBinNegotiationLegacyDegrade runs a binary-first dial against a
// fake pre-binwire server: one that treats the Magic preamble as a
// garbage JSON line. The client must consume the bad_json answer and
// continue in JSON on the same connection.
func TestBinNegotiationLegacyDegrade(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		// The magic arrives as one newline-terminated garbage "line".
		if _, err := r.ReadString('\n'); err != nil {
			return
		}
		fmt.Fprintf(conn, `{"id":0,"error":"request is not valid JSON","code":%q}`+"\n", CodeBadJSON)
		// Then serve newline-JSON like a legacy scansd would.
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return
			}
			var req WireRequest
			if json.Unmarshal([]byte(line), &req) != nil {
				return
			}
			res := make([]int64, len(req.Data))
			var acc int64
			for i, v := range req.Data {
				acc += v
				res[i] = acc
			}
			out, _ := json.Marshal(WireResponse{ID: req.ID, Result: res})
			conn.Write(append(out, '\n'))
		}
	}()

	c, err := DialBin(ln.Addr().String())
	if err != nil {
		t.Fatalf("DialBin against legacy server: %v", err)
	}
	defer c.Close()
	if c.Bin() {
		t.Fatal("client claims binary against a JSON-only server")
	}
	res, err := c.Scan("sum", "inclusive", "forward", []int64{1, 2, 3})
	if err != nil {
		t.Fatalf("degraded scan: %v", err)
	}
	if len(res) != 3 || res[2] != 6 {
		t.Fatalf("degraded scan result %v", res)
	}
	releaseData(res)
}

// TestBinMultiplexing is the mux acceptance test: one binary
// connection, 65 concurrent in-flight requests, responses completing
// out of submission order.
//
// Phase 1 pins the in-flight count: with fusion disabled and every
// batch's kernel pass slowed, no response can arrive until well after
// all 65 submissions are on the wire, so the peak concurrent-waiter
// count must reach 65 — 65 unanswered requests multiplexed on one
// socket.
//
// Phase 2 pins reordering deterministically: a slow request is
// submitted first, a fast one second, and the fast one must return
// while the slow one is still in flight.
func TestBinMultiplexing(t *testing.T) {
	faults := fault.New(1)
	ns := startNet(t, Config{MaxBatchRequests: 1, Executors: 8, Faults: faults})
	bc := dialBinT(t, ns.Addr())

	const concurrent = 65
	faults.ArmSleep(fault.KernelSlow, 1, 60*time.Millisecond)

	var (
		inflight, peak atomic.Int64
		mu             sync.Mutex
		order          []int
		wg             sync.WaitGroup
	)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cur := inflight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			defer inflight.Add(-1)
			res, err := bc.Scan("sum", "inclusive", "forward", []int64{int64(i), 1})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			if len(res) != 2 || res[0] != int64(i) || res[1] != int64(i)+1 {
				t.Errorf("request %d: got %v", i, res)
			}
			releaseData(res)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p < concurrent {
		t.Fatalf("peak in-flight %d, want %d on one connection", p, concurrent)
	}
	if len(order) != concurrent {
		t.Fatalf("only %d of %d responses arrived", len(order), concurrent)
	}

	// Phase 2: deterministic out-of-order completion. The first request
	// is submitted while the kernel is slowed 120ms; the chaos is then
	// disarmed and a second request submitted, which must complete while
	// the first still waits on its batch.
	faults.ArmSleep(fault.KernelSlow, 1, 120*time.Millisecond)
	var slowDone atomic.Bool
	done := make(chan error, 1)
	go func() {
		res, err := bc.Scan("sum", "inclusive", "forward", []int64{1, 2, 3})
		slowDone.Store(true)
		releaseData(res)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond) // slow request is in its kernel sleep now
	faults.Disarm(fault.KernelSlow)
	fast, err := bc.Scan("sum", "inclusive", "forward", []int64{9})
	if err != nil {
		t.Fatalf("fast request: %v", err)
	}
	releaseData(fast)
	if slowDone.Load() {
		t.Fatal("slow request finished before the fast one submitted after it: no reordering observed")
	}
	if err := <-done; err != nil {
		t.Fatalf("slow request: %v", err)
	}
}
