package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Wire-level streaming sessions. connStreams is one connection's
// session table: stream_open registers a server-side Stream (the carry
// holder, stream.go) plus one worker goroutine, stream_chunk routes
// payloads to that worker in arrival order, and stream_close tears the
// session down, answering with the total. The table enforces the
// admission half of the failure model — a cap on open streams per
// connection and an idle TTL per stream — while the Stream itself
// enforces the carry half (any failed chunk kills the whole stream).
//
// Ownership: the read loop (handle) is the only caller of open/chunk/
// closeStream and of the final closeAll, so table mutations race only
// with workers removing their own dead sessions; cs.mu covers both.
// Chunks are handed to workers over a bounded buffered channel with a
// non-blocking send, so a flooding stream can never stall the read
// loop — but because a SKIPPED chunk would silently corrupt the carry,
// a full queue fails the stream rather than dropping the chunk.

// StreamWindow is the flow-control credit a resumable stream-open ack
// advertises: how many chunk requests a client may hold in flight on
// one stream before blocking on acks. It equals the worker's mailbox
// depth, so a client honoring the window can never hit the
// full-mailbox stream failure — the credit IS the mailbox.
const StreamWindow = 16

// streamQueueDepth bounds how many chunks may wait on one stream's
// worker. Chunks serialize through the kernel anyway (chunk k+1 is
// seeded by chunk k's output), so a deep queue buys nothing but memory.
const streamQueueDepth = StreamWindow

// errConnTeardown is the Abort cause for streams still open when their
// connection dies (clean close, idle timeout, or a chaos conn.drop).
var errConnTeardown = errors.New("connection closed with stream open")

// streamMsg is one queued operation on a stream: a chunk, or (with
// closing set) the stream_close.
type streamMsg struct {
	id        uint64 // request id for the response
	timeoutMS int64
	data      []int64
	closing   bool
}

// netStream is one wire session: the carry-holding Stream plus the
// worker's mailbox. dead is guarded by connStreams.mu; once set, no
// further messages are enqueued and the worker drains what remains.
type netStream struct {
	sid  uint64
	st   ScanStream
	ch   chan streamMsg
	quit chan struct{}
	dead bool
}

// connStreams is the per-connection session table (see the file
// comment for the ownership rules).
type connStreams struct {
	ns     *NetServer
	codec  connCodec
	tenant string

	mu sync.Mutex
	m  map[uint64]*netStream
	wg sync.WaitGroup
}

func newConnStreams(ns *NetServer, codec connCodec, tenant string) *connStreams {
	return &connStreams{ns: ns, codec: codec, tenant: tenant, m: make(map[uint64]*netStream)}
}

// respond forwards to the connection's codec (responses ride the same
// writer as every other response on the connection).
func (cs *connStreams) respond(resp WireResponse) { cs.codec.respond(resp) }

// open handles stream_open: admission (streaming enabled, unique sid,
// under the per-connection cap), then a Stream plus worker. The ack
// echoes the request id.
func (cs *connStreams) open(req WireRequest) {
	fail := func(code, msg string) {
		cs.respond(WireResponse{ID: req.ID, Error: msg, Code: code})
	}
	if cs.ns.ncfg.MaxStreams < 0 {
		fail(CodeBadRequest, "streaming disabled on this server")
		return
	}
	if req.Elem != "" && req.Elem != ElemInt64 {
		// Float streams would need the carry tracked in the float domain
		// across chunks; not supported — chunk float data client-side and
		// map each chunk, or use int64 streams.
		fail(CodeBadRequest, fmt.Sprintf("streaming supports int64 elements only, not %q", req.Elem))
		return
	}
	spec, err := ParseSpec(req.Op, req.Kind, req.Dir)
	if err != nil {
		fail(codeForError(err), err.Error())
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = cs.tenant
	}
	cs.mu.Lock()
	if _, dup := cs.m[req.Stream]; dup {
		cs.mu.Unlock()
		fail(CodeBadRequest, fmt.Sprintf("stream %d already open on this connection", req.Stream))
		return
	}
	if len(cs.m) >= cs.ns.ncfg.MaxStreams {
		cs.mu.Unlock()
		fail(CodeOverloaded, fmt.Sprintf("per-connection stream cap (%d) reached", cs.ns.ncfg.MaxStreams))
		return
	}
	st, err := cs.ns.be.OpenScanStream(spec, tenant)
	if err != nil {
		cs.mu.Unlock()
		fail(codeForError(err), err.Error())
		return
	}
	sess := &netStream{
		sid:  req.Stream,
		st:   st,
		ch:   make(chan streamMsg, streamQueueDepth),
		quit: make(chan struct{}),
	}
	cs.m[req.Stream] = sess
	cs.wg.Add(1)
	go cs.run(sess)
	cs.mu.Unlock()
	ack := WireResponse{ID: req.ID}
	if req.WantAck {
		ack.Window = StreamWindow
		if ts, ok := st.(TokenStream); ok {
			ack.Resume = ts.ResumeToken()
		}
	}
	cs.respond(ack)
}

// resume handles stream_resume: the same admission as open (cap, unique
// sid), but the session comes from the backend's resume table instead
// of a fresh open. The ack carries resumeFrom — the 1-based index of
// the next chunk the server expects — so the client knows how far to
// rewind (resumeFrom ≤ lastAcked+1; strictly smaller when a standby's
// replica lagged the dead primary's acks).
func (cs *connStreams) resume(req WireRequest) {
	fail := func(code, msg string) {
		cs.respond(WireResponse{ID: req.ID, Error: msg, Code: code})
	}
	if cs.ns.ncfg.MaxStreams < 0 {
		fail(CodeBadRequest, "streaming disabled on this server")
		return
	}
	rb, ok := cs.ns.be.(StreamResumer)
	if !ok {
		// no_stream (not bad_request): the client's recovery — restart
		// the stream from the first chunk — is exactly the no_stream one.
		fail(CodeNoStream, "backend does not support stream resume")
		return
	}
	// No tenant handling: the resumed session keeps the tenant recorded
	// at open time.
	cs.mu.Lock()
	if _, dup := cs.m[req.Stream]; dup {
		cs.mu.Unlock()
		fail(CodeBadRequest, fmt.Sprintf("stream %d already open on this connection", req.Stream))
		return
	}
	if len(cs.m) >= cs.ns.ncfg.MaxStreams {
		cs.mu.Unlock()
		fail(CodeOverloaded, fmt.Sprintf("per-connection stream cap (%d) reached", cs.ns.ncfg.MaxStreams))
		return
	}
	st, from, err := rb.ResumeScanStream(req.Resume, req.Seq)
	if err != nil {
		cs.mu.Unlock()
		fail(codeForError(err), err.Error())
		return
	}
	sess := &netStream{
		sid:  req.Stream,
		st:   st,
		ch:   make(chan streamMsg, streamQueueDepth),
		quit: make(chan struct{}),
	}
	cs.m[req.Stream] = sess
	cs.wg.Add(1)
	go cs.run(sess)
	cs.mu.Unlock()
	cs.respond(WireResponse{ID: req.ID, Resume: req.Resume, Seq: &from, Window: StreamWindow})
}

// chunk handles stream_chunk: the response-size gate (a chunk's result
// must fit the line budget like any other response), then an ordered
// non-blocking handoff to the stream's worker.
func (cs *connStreams) chunk(req WireRequest) {
	if worst := cs.codec.worstResp(len(req.Data)); worst > cs.ns.ncfg.MaxLineBytes {
		// Refusing the chunk but continuing the stream would corrupt
		// the carry, so an oversized chunk fails the stream.
		releaseData(req.Data)
		cs.kill(req.Stream)
		cs.respond(WireResponse{
			ID: req.ID,
			Error: fmt.Sprintf("worst-case chunk response (%d bytes for %d elements) exceeds the %d-byte line budget; use smaller chunks",
				worst, len(req.Data), cs.ns.ncfg.MaxLineBytes),
			Code: CodeTooLarge,
		})
		return
	}
	cs.dispatch(req, streamMsg{id: req.ID, timeoutMS: req.TimeoutMS, data: req.Data})
}

// closeStream handles stream_close. The close rides the same ordered
// mailbox as chunks, so it lands after everything already queued.
func (cs *connStreams) closeStream(req WireRequest) {
	cs.dispatch(req, streamMsg{id: req.ID, closing: true})
}

// dispatch enqueues a message on its stream's worker. Unknown or dead
// streams answer no_stream; a full mailbox fails the stream (a dropped
// chunk would corrupt the carry — see the file comment).
func (cs *connStreams) dispatch(req WireRequest, msg streamMsg) {
	cs.mu.Lock()
	sess := cs.m[req.Stream]
	if sess == nil || sess.dead {
		cs.mu.Unlock()
		releaseData(msg.data)
		cs.respond(WireResponse{ID: req.ID, Error: ErrNoStream.Error(), Code: CodeNoStream})
		return
	}
	select {
	case sess.ch <- msg:
		cs.mu.Unlock()
	default:
		sess.dead = true
		delete(cs.m, sess.sid)
		cs.mu.Unlock()
		close(sess.quit) // worker tears down and drains the mailbox
		releaseData(msg.data)
		cs.respond(WireResponse{
			ID:    req.ID,
			Error: fmt.Sprintf("stream %d chunk queue full (%d pending); stream failed", req.Stream, streamQueueDepth),
			Code:  CodeOverloaded,
		})
	}
}

// kill marks a stream dead and signals its worker to tear down; no-op
// for unknown streams.
func (cs *connStreams) kill(sid uint64) {
	cs.mu.Lock()
	sess := cs.m[sid]
	if sess != nil && !sess.dead {
		sess.dead = true
		delete(cs.m, sid)
	} else {
		sess = nil
	}
	cs.mu.Unlock()
	if sess != nil {
		close(sess.quit)
	}
}

// remove is a worker dropping its own (now terminal) session from the
// table. Idempotent against a concurrent kill/closeAll.
func (cs *connStreams) remove(sess *netStream) {
	cs.mu.Lock()
	sess.dead = true
	delete(cs.m, sess.sid)
	cs.mu.Unlock()
}

// closeAll tears down every session at connection end: whatever killed
// the connection (clean close, idle timeout, chaos conn.drop), no
// stream state survives it. Runs on the read-loop goroutine after the
// loop has exited, so no new messages can race the teardown.
func (cs *connStreams) closeAll() {
	cs.mu.Lock()
	var doomed []*netStream
	for sid, sess := range cs.m {
		if !sess.dead {
			sess.dead = true
			doomed = append(doomed, sess)
		}
		delete(cs.m, sid)
	}
	cs.mu.Unlock()
	for _, sess := range doomed {
		close(sess.quit)
	}
	cs.wg.Wait()
}

// run is one stream's worker: it serializes the stream's operations
// (chunk k+1's carry is chunk k's output), owns the idle TTL, and on
// any terminal event — close, chunk failure, expiry, teardown — frees
// the session and drains the mailbox so every enqueued message still
// gets a response.
func (cs *connStreams) run(sess *netStream) {
	defer cs.wg.Done()
	ttl := cs.ns.ncfg.StreamIdleTTL
	var timer *time.Timer
	var expired <-chan time.Time
	if ttl > 0 {
		timer = time.NewTimer(ttl)
		defer timer.Stop()
		expired = timer.C
	}
	for {
		// A closed quit wins over queued work: the connection is gone,
		// so executing more chunks buys nothing.
		select {
		case <-sess.quit:
			sess.st.Abort(errConnTeardown)
			cs.drain(sess, CodeStreamFailed, ErrStreamFailed.Error())
			return
		default:
		}
		select {
		case <-sess.quit:
			sess.st.Abort(errConnTeardown)
			cs.drain(sess, CodeStreamFailed, ErrStreamFailed.Error())
			return
		case <-expired:
			cs.remove(sess)
			sess.st.Expire()
			cs.drain(sess, CodeNoStream, ErrNoStream.Error())
			return
		case m := <-sess.ch:
			if timer != nil {
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(ttl)
			}
			if m.closing {
				total, err := sess.st.Close()
				cs.remove(sess)
				if err != nil {
					cs.respond(WireResponse{ID: m.id, Error: err.Error(), Code: codeForError(err)})
				} else {
					cs.respond(WireResponse{ID: m.id, Total: &total})
				}
				cs.drain(sess, CodeNoStream, ErrNoStream.Error())
				return
			}
			ctx := context.Background()
			cancel := context.CancelFunc(func() {})
			if m.timeoutMS > 0 {
				ctx, cancel = context.WithTimeout(ctx, time.Duration(m.timeoutMS)*time.Millisecond)
			}
			res, err := sess.st.Push(ctx, m.data)
			// Push has consumed the chunk (it reads the carry off res
			// before returning), so its buffer circulates now.
			releaseData(m.data)
			cancel()
			if err != nil {
				// The failing chunk reports the underlying typed error;
				// the stream is dead (Push freed it) so anything still
				// queued gets stream_failed.
				cs.remove(sess)
				cs.respond(WireResponse{ID: m.id, Error: err.Error(), Code: codeForError(err)})
				cs.drain(sess, CodeStreamFailed, ErrStreamFailed.Error())
				return
			}
			cs.respond(WireResponse{ID: m.id, Result: res})
			releaseData(res)
		}
	}
}

// drain answers every message still in a dead session's mailbox. The
// session was removed from the table first, so no new sends race this.
func (cs *connStreams) drain(sess *netStream, code, msg string) {
	for {
		select {
		case m := <-sess.ch:
			releaseData(m.data)
			cs.respond(WireResponse{ID: m.id, Error: msg, Code: code})
		default:
			return
		}
	}
}
