package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"scans/internal/fault"
)

// startNet spins up a NetServer on a loopback port for tests.
func startNet(t *testing.T, cfg Config) *NetServer {
	t.Helper()
	return startNetCfg(t, cfg, NetConfig{})
}

// startNetCfg is startNet with explicit network limits.
func startNetCfg(t *testing.T, cfg Config, ncfg NetConfig) *NetServer {
	t.Helper()
	ns, err := ListenNet("127.0.0.1:0", cfg, ncfg)
	if err != nil {
		t.Fatalf("ListenNet: %v", err)
	}
	t.Cleanup(ns.Close)
	return ns
}

// rawConn dials the server without the Client wrapper, for tests that
// need to send broken lines and inspect raw responses.
func rawConn(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, bufio.NewReader(conn)
}

// readResp reads one WireResponse line off a raw connection.
func readResp(t *testing.T, r *bufio.Reader) WireResponse {
	t.Helper()
	line, err := r.ReadBytes('\n')
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	var resp WireResponse
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatalf("unmarshal %q: %v", line, err)
	}
	return resp
}

func TestNetRoundTripSmoke(t *testing.T) {
	// The acceptance smoke test: server started in-process, the load
	// generator's client dials it, scans round-trip with exact results.
	ns := startNet(t, Config{MaxWait: 100 * time.Microsecond})
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	got, err := c.Scan("sum", "", "", []int64{2, 1, 2, 3, 5, 8})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if want := []int64{0, 2, 3, 5, 8, 13}; !reflect.DeepEqual(got, want) {
		t.Fatalf("sum scan = %v, want %v", got, want)
	}

	got, err = c.Scan("max", "inclusive", "backward", []int64{3, 1, 4, 1, 5})
	if err != nil {
		t.Fatalf("backward max Scan: %v", err)
	}
	if want := []int64{5, 5, 5, 5, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("backward inclusive max = %v, want %v", got, want)
	}

	if got, err := c.Scan("min", "", "", []int64{}); err != nil || len(got) != 0 {
		t.Fatalf("empty scan = (%v, %v), want ([], nil)", got, err)
	}

	if st := ns.Stats(); st.Requests < 3 {
		t.Fatalf("server stats saw %d requests, want >= 3", st.Requests)
	}
}

func TestNetBadRequests(t *testing.T) {
	ns := startNet(t, Config{})
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Scan("xor", "", "", []int64{1}); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("unknown op over the wire = %v, want unknown-op error", err)
	}
	// The connection must survive a bad request.
	if _, err := c.Scan("sum", "", "", []int64{1, 1}); err != nil {
		t.Fatalf("scan after bad request: %v", err)
	}
}

func TestNetConcurrentClientsAgainstReference(t *testing.T) {
	// Several connections × several goroutines each, all fusing into
	// the same server; every response must match the serial reference.
	ns := startNet(t, Config{MaxWait: 200 * time.Microsecond})
	specs := allSpecs()
	const conns, perConn, reqs = 3, 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, conns*perConn)
	for ci := 0; ci < conns; ci++ {
		c, err := Dial(ns.Addr())
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		defer c.Close()
		for g := 0; g < perConn; g++ {
			wg.Add(1)
			go func(seed int64, c *Client) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < reqs; i++ {
					spec := specs[rng.Intn(len(specs))]
					data := randomData(rng, 1+rng.Intn(32))
					if spec.Op == OpMul {
						for j := range data {
							data[j] = 2*(data[j]&1) - 1
						}
					}
					got, err := c.Scan(spec.Op.String(), spec.Kind.String(), spec.Dir.String(), data)
					if err != nil {
						errs <- err
						return
					}
					if want := directScan(spec, data); !reflect.DeepEqual(got, want) {
						errs <- &mismatchError{spec: spec}
						return
					}
				}
			}(int64(ci*100+g), c)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatchError struct{ spec Spec }

func (e *mismatchError) Error() string {
	return "wire result differs from direct kernel for " + e.spec.String()
}

func TestNetMalformedJSONGetsStructuredError(t *testing.T) {
	// A malformed line must produce a structured error response carrying
	// the recoverable request id and a machine code — and the connection
	// must survive to serve the next request.
	ns := startNet(t, Config{})
	conn, r := rawConn(t, ns.Addr())

	if _, err := conn.Write([]byte(`{"id":7,"op":"sum","data":[1,2` + "\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	resp := readResp(t, r)
	if resp.ID != 7 || resp.Code != CodeBadJSON || resp.Error == "" {
		t.Fatalf("malformed-line response = %+v, want id=7 code=%q", resp, CodeBadJSON)
	}

	if _, err := conn.Write([]byte(`{"id":8,"op":"sum","data":[1,2]}` + "\n")); err != nil {
		t.Fatalf("write after bad line: %v", err)
	}
	resp = readResp(t, r)
	if resp.ID != 8 || resp.Error != "" || !reflect.DeepEqual([]int64(resp.Result), []int64{0, 1}) {
		t.Fatalf("request after bad line = %+v, want served result", resp)
	}
}

func TestNetOversizedLineGetsStructuredError(t *testing.T) {
	// A line over MaxLineBytes must be answered with a too_large error
	// matched to the request id (recovered from the line prefix), then
	// the connection closes.
	ns := startNetCfg(t, Config{}, NetConfig{MaxLineBytes: 1 << 12})
	conn, r := rawConn(t, ns.Addr())

	line := []byte(`{"id":99,"op":"sum","data":[`)
	for len(line) < 1<<14 {
		line = append(line, []byte("1234567,")...)
	}
	line = append(line, []byte("1]}\n")...)
	if _, err := conn.Write(line); err != nil {
		t.Fatalf("write: %v", err)
	}
	resp := readResp(t, r)
	if resp.ID != 99 || resp.Code != CodeTooLarge {
		t.Fatalf("oversized-line response = %+v, want id=99 code=%q", resp, CodeTooLarge)
	}
	// Connection is closed after the reply.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := r.ReadBytes('\n'); err == nil {
		t.Fatal("connection still open after oversized line")
	}
}

func TestNetPerConnInflightCap(t *testing.T) {
	// With a slow kernel and an in-flight cap of 1, a second request on
	// the same connection while the first executes must be rejected with
	// a retryable overloaded error — and served fine once the first
	// completes.
	faults := fault.New(1)
	faults.ArmSleep(fault.KernelSlow, 1, 150*time.Millisecond)
	ns := startNetCfg(t, Config{Faults: faults}, NetConfig{PerConnInflight: 1})
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	done := make(chan error, 1)
	go func() {
		_, err := c.Scan("sum", "", "", []int64{1, 2, 3})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the first request occupy its slot
	if _, err := c.Scan("sum", "", "", []int64{4, 5}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second in-flight scan err = %v, want ErrOverloaded", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("first scan: %v", err)
	}
	faults.DisarmAll()
	if _, err := c.Scan("sum", "", "", []int64{4, 5}); err != nil {
		t.Fatalf("scan after cap release: %v", err)
	}
}

func TestNetMaxConns(t *testing.T) {
	ns := startNetCfg(t, Config{}, NetConfig{MaxConns: 1})
	c1, err := Dial(ns.Addr())
	if err != nil {
		t.Fatalf("Dial 1: %v", err)
	}
	defer c1.Close()
	if _, err := c1.Scan("sum", "", "", []int64{1}); err != nil {
		t.Fatalf("scan on conn 1: %v", err)
	}
	// Second connection: one structured overloaded line, then close.
	conn, r := rawConn(t, ns.Addr())
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp := readResp(t, r)
	if resp.Code != CodeOverloaded {
		t.Fatalf("over-limit conn response = %+v, want code=%q", resp, CodeOverloaded)
	}
	if _, err := r.ReadBytes('\n'); err == nil {
		t.Fatal("over-limit connection left open")
	}
	// The first connection is unaffected.
	if _, err := c1.Scan("sum", "", "", []int64{2}); err != nil {
		t.Fatalf("scan on conn 1 after rejection: %v", err)
	}
}

func TestNetClientTypedErrors(t *testing.T) {
	// The Client maps wire codes back to the package's typed errors.
	ns := startNet(t, Config{})
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Scan("xor", "", "", []int64{1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown op err = %v, want ErrBadRequest", err)
	}
}

func TestNetClientCtxDeadline(t *testing.T) {
	// A client-side deadline bounds the wait even when the server is
	// stalled by a slow kernel; the error is context.DeadlineExceeded
	// whether it fires locally or is shed server-side.
	faults := fault.New(2)
	faults.ArmSleep(fault.KernelSlow, 1, 300*time.Millisecond)
	ns := startNet(t, Config{Faults: faults})
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.ScanCtx(ctx, "sum", "", "", []int64{1, 2, 3})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ScanCtx err = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("deadline took %v to fire", d)
	}
}

func TestNetIdleTimeoutClosesConnection(t *testing.T) {
	ns := startNetCfg(t, Config{}, NetConfig{IdleTimeout: 50 * time.Millisecond})
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Scan("sum", "", "", []int64{1, 2}); err != nil {
		t.Fatalf("scan before idle: %v", err)
	}
	time.Sleep(300 * time.Millisecond)
	if _, err := c.Scan("sum", "", "", []int64{1, 2}); err == nil {
		t.Fatal("scan on idle-closed connection succeeded")
	}
}
