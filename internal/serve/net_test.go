package serve

import (
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// startNet spins up a NetServer on a loopback port for tests.
func startNet(t *testing.T, cfg Config) *NetServer {
	t.Helper()
	ns, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(ns.Close)
	return ns
}

func TestNetRoundTripSmoke(t *testing.T) {
	// The acceptance smoke test: server started in-process, the load
	// generator's client dials it, scans round-trip with exact results.
	ns := startNet(t, Config{MaxWait: 100 * time.Microsecond})
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	got, err := c.Scan("sum", "", "", []int64{2, 1, 2, 3, 5, 8})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if want := []int64{0, 2, 3, 5, 8, 13}; !reflect.DeepEqual(got, want) {
		t.Fatalf("sum scan = %v, want %v", got, want)
	}

	got, err = c.Scan("max", "inclusive", "backward", []int64{3, 1, 4, 1, 5})
	if err != nil {
		t.Fatalf("backward max Scan: %v", err)
	}
	if want := []int64{5, 5, 5, 5, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("backward inclusive max = %v, want %v", got, want)
	}

	if got, err := c.Scan("min", "", "", []int64{}); err != nil || len(got) != 0 {
		t.Fatalf("empty scan = (%v, %v), want ([], nil)", got, err)
	}

	if st := ns.Stats(); st.Requests < 3 {
		t.Fatalf("server stats saw %d requests, want >= 3", st.Requests)
	}
}

func TestNetBadRequests(t *testing.T) {
	ns := startNet(t, Config{})
	c, err := Dial(ns.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Scan("xor", "", "", []int64{1}); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("unknown op over the wire = %v, want unknown-op error", err)
	}
	// The connection must survive a bad request.
	if _, err := c.Scan("sum", "", "", []int64{1, 1}); err != nil {
		t.Fatalf("scan after bad request: %v", err)
	}
}

func TestNetConcurrentClientsAgainstReference(t *testing.T) {
	// Several connections × several goroutines each, all fusing into
	// the same server; every response must match the serial reference.
	ns := startNet(t, Config{MaxWait: 200 * time.Microsecond})
	specs := allSpecs()
	const conns, perConn, reqs = 3, 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, conns*perConn)
	for ci := 0; ci < conns; ci++ {
		c, err := Dial(ns.Addr())
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		defer c.Close()
		for g := 0; g < perConn; g++ {
			wg.Add(1)
			go func(seed int64, c *Client) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < reqs; i++ {
					spec := specs[rng.Intn(len(specs))]
					data := randomData(rng, 1+rng.Intn(32))
					if spec.Op == OpMul {
						for j := range data {
							data[j] = 2*(data[j]&1) - 1
						}
					}
					got, err := c.Scan(spec.Op.String(), spec.Kind.String(), spec.Dir.String(), data)
					if err != nil {
						errs <- err
						return
					}
					if want := directScan(spec, data); !reflect.DeepEqual(got, want) {
						errs <- &mismatchError{spec: spec}
						return
					}
				}
			}(int64(ci*100+g), c)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatchError struct{ spec Spec }

func (e *mismatchError) Error() string {
	return "wire result differs from direct kernel for " + e.spec.String()
}
