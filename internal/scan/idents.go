package scan

import "math"

// Ready-made instances of the explicit-identity operators for the types
// the paper's algorithms use. MaxInt/MinInt use the extreme int values,
// MaxFloat64/MinFloat64 use ±Inf.
var (
	// MaxIntOp is max over int with identity math.MinInt.
	MaxIntOp = Max[int]{Id: math.MinInt}
	// MinIntOp is min over int with identity math.MaxInt.
	MinIntOp = Min[int]{Id: math.MaxInt}
	// MaxFloat64Op is max over float64 with identity -Inf.
	MaxFloat64Op = Max[float64]{Id: math.Inf(-1)}
	// MinFloat64Op is min over float64 with identity +Inf.
	MinFloat64Op = Min[float64]{Id: math.Inf(1)}
)
