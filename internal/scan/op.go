// Package scan provides sequential and parallel scan (prefix computation)
// kernels over slices: exclusive and inclusive, forward and backward, and
// segmented variants, for any associative operator with an identity.
//
// The package is the performance substrate of this repository's
// reproduction of Blelloch, "Scans as Primitive Parallel Operations"
// (ICPP 1987). The paper's two primitive scans — integer +-scan and
// max-scan — have hand-specialized kernels; everything else is generic.
//
// All scans in this package follow the paper's convention: a scan of
// [a0, a1, ..., an-1] with operator ⊕ and identity i returns the
// *exclusive* result [i, a0, a0⊕a1, ..., a0⊕...⊕an-2] unless the function
// name says Inclusive.
package scan

// Integer is the constraint for the built-in integer types.
type Integer interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr
}

// Float is the constraint for the built-in floating-point types.
type Float interface {
	~float32 | ~float64
}

// Number is the constraint for types with +, * arithmetic.
type Number interface {
	Integer | Float
}

// Ordered is the constraint for types with a total order under <.
type Ordered interface {
	Integer | Float | ~string
}

// Op is a binary associative operator with an identity element, the
// algebraic structure (a monoid) every scan in this package requires.
//
// Combine must be associative and Identity must satisfy
// Combine(Identity(), x) == Combine(x, Identity()) == x; scans do not
// check this, but the parallel kernels silently produce wrong answers if
// it is violated. Commutativity is NOT required.
type Op[T any] interface {
	Identity() T
	Combine(a, b T) T
}

// Add is the addition monoid over any numeric type, identity 0.
// It is one of the paper's two primitive scan operators.
type Add[T Number] struct{}

// Identity returns 0.
func (Add[T]) Identity() T { var z T; return z }

// Combine returns a + b.
func (Add[T]) Combine(a, b T) T { return a + b }

// Mul is the multiplication monoid over any numeric type, identity 1.
type Mul[T Number] struct{}

// Identity returns 1.
func (Mul[T]) Identity() T { return T(1) }

// Combine returns a * b.
func (Mul[T]) Combine(a, b T) T { return a * b }

// Max is the maximum monoid over an ordered type. Because Go has no
// generic "minimum value of T", the identity is stored explicitly; use
// the MaxInt, MaxFloat64, ... constructors for the usual instances. It is
// the second of the paper's two primitive scan operators.
type Max[T Ordered] struct {
	// Id is the identity element: a value ≤ every input.
	Id T
}

// Identity returns the configured identity element.
func (m Max[T]) Identity() T { return m.Id }

// Combine returns the larger of a and b.
func (Max[T]) Combine(a, b T) T {
	if a < b {
		return b
	}
	return a
}

// Min is the minimum monoid over an ordered type, with an explicit
// identity (a value ≥ every input); see Max.
type Min[T Ordered] struct {
	// Id is the identity element: a value ≥ every input.
	Id T
}

// Identity returns the configured identity element.
func (m Min[T]) Identity() T { return m.Id }

// Combine returns the smaller of a and b.
func (Min[T]) Combine(a, b T) T {
	if b < a {
		return b
	}
	return a
}

// Or is the logical-or monoid over bool, identity false.
type Or struct{}

// Identity returns false.
func (Or) Identity() bool { return false }

// Combine returns a || b.
func (Or) Combine(a, b bool) bool { return a || b }

// And is the logical-and monoid over bool, identity true.
type And struct{}

// Identity returns true.
func (And) Identity() bool { return true }

// Combine returns a && b.
func (And) Combine(a, b bool) bool { return a && b }

// Func adapts an arbitrary associative function and identity to the Op
// interface. Prefer the concrete operator types where possible: they
// inline, Func does not.
type Func[T any] struct {
	// Id is the identity element of F.
	Id T
	// F is the associative combining function.
	F func(a, b T) T
}

// Identity returns the configured identity element.
func (f Func[T]) Identity() T { return f.Id }

// Combine applies the wrapped function.
func (f Func[T]) Combine(a, b T) T { return f.F(a, b) }
