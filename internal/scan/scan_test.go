package scan

import (
	"math"
	"reflect"
	"testing"
)

func TestExclusiveSumPaperExample(t *testing.T) {
	// Paper §2.1: +-scan([2 1 2 3 5 8 13 21]) = [0 2 3 5 8 13 21 34].
	a := []int{2, 1, 2, 3, 5, 8, 13, 21}
	want := []int{0, 2, 3, 5, 8, 13, 21, 34}
	got := make([]int, len(a))
	Exclusive(Add[int]{}, got, a)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Exclusive(+) = %v, want %v", got, want)
	}
	got2 := make([]int, len(a))
	if total := ExclusiveSumInts(got2, a); total != 55 {
		t.Errorf("ExclusiveSumInts total = %d, want 55", total)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Errorf("ExclusiveSumInts = %v, want %v", got2, want)
	}
}

func TestExclusiveEmpty(t *testing.T) {
	Exclusive(Add[int]{}, nil, nil)
	Inclusive(Add[int]{}, nil, nil)
	ExclusiveBackward(Add[int]{}, nil, nil)
	InclusiveBackward(Add[int]{}, nil, nil)
	if got := Reduce(Add[int]{}, nil); got != 0 {
		t.Errorf("Reduce(empty) = %d, want 0", got)
	}
}

func TestExclusiveSingle(t *testing.T) {
	got := []int{99}
	Exclusive(Add[int]{}, got, []int{7})
	if got[0] != 0 {
		t.Errorf("Exclusive single = %d, want 0", got[0])
	}
	Inclusive(Add[int]{}, got, []int{7})
	if got[0] != 7 {
		t.Errorf("Inclusive single = %d, want 7", got[0])
	}
}

func TestExclusiveAliasing(t *testing.T) {
	a := []int{1, 2, 3, 4, 5}
	Exclusive(Add[int]{}, a, a)
	want := []int{0, 1, 3, 6, 10}
	if !reflect.DeepEqual(a, want) {
		t.Errorf("aliased Exclusive = %v, want %v", a, want)
	}
}

func TestInclusive(t *testing.T) {
	a := []int{3, 1, 4, 1, 5}
	got := make([]int, len(a))
	Inclusive(Add[int]{}, got, a)
	want := []int{3, 4, 8, 9, 14}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Inclusive(+) = %v, want %v", got, want)
	}
}

func TestMaxScan(t *testing.T) {
	a := []int{3, 1, 4, 1, 5, 9, 2, 6}
	got := make([]int, len(a))
	Exclusive(MaxIntOp, got, a)
	want := []int{math.MinInt, 3, 3, 4, 4, 5, 9, 9}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Exclusive(max) = %v, want %v", got, want)
	}
	got2 := make([]int, len(a))
	if m := ExclusiveMaxInts(got2, a, math.MinInt); m != 9 {
		t.Errorf("ExclusiveMaxInts max = %d, want 9", m)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Errorf("ExclusiveMaxInts = %v, want %v", got2, want)
	}
}

func TestMinScan(t *testing.T) {
	a := []int{5, 3, 8, 1, 9}
	got := make([]int, len(a))
	Exclusive(MinIntOp, got, a)
	want := []int{math.MaxInt, 5, 3, 3, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Exclusive(min) = %v, want %v", got, want)
	}
}

func TestBackwardScans(t *testing.T) {
	a := []int{1, 2, 3, 4}
	got := make([]int, len(a))
	ExclusiveBackward(Add[int]{}, got, a)
	if want := []int{9, 7, 4, 0}; !reflect.DeepEqual(got, want) {
		t.Errorf("ExclusiveBackward(+) = %v, want %v", got, want)
	}
	InclusiveBackward(Add[int]{}, got, a)
	if want := []int{10, 9, 7, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("InclusiveBackward(+) = %v, want %v", got, want)
	}
}

func TestBackwardAliasing(t *testing.T) {
	a := []int{1, 2, 3, 4}
	ExclusiveBackward(Add[int]{}, a, a)
	if want := []int{9, 7, 4, 0}; !reflect.DeepEqual(a, want) {
		t.Errorf("aliased ExclusiveBackward = %v, want %v", a, want)
	}
}

func TestOrAndScans(t *testing.T) {
	f := []bool{false, false, true, false, false}
	got := make([]bool, len(f))
	Exclusive(Or{}, got, f)
	if want := []bool{false, false, false, true, true}; !reflect.DeepEqual(got, want) {
		t.Errorf("Exclusive(or) = %v, want %v", got, want)
	}
	g := []bool{true, true, false, true}
	got2 := make([]bool, len(g))
	Exclusive(And{}, got2, g)
	if want := []bool{true, true, true, false}; !reflect.DeepEqual(got2, want) {
		t.Errorf("Exclusive(and) = %v, want %v", got2, want)
	}
}

func TestMulScan(t *testing.T) {
	a := []float64{2, 3, 4}
	got := make([]float64, len(a))
	Inclusive(Mul[float64]{}, got, a)
	if want := []float64{2, 6, 24}; !reflect.DeepEqual(got, want) {
		t.Errorf("Inclusive(mul) = %v, want %v", got, want)
	}
}

func TestFuncOp(t *testing.T) {
	// A non-commutative monoid: string concatenation.
	op := Func[string]{Id: "", F: func(a, b string) string { return a + b }}
	a := []string{"a", "b", "c", "d"}
	got := make([]string, len(a))
	Exclusive(op, got, a)
	if want := []string{"", "a", "ab", "abc"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Exclusive(concat) = %v, want %v", got, want)
	}
	ExclusiveBackward(op, got, a)
	if want := []string{"bcd", "cd", "d", ""}; !reflect.DeepEqual(got, want) {
		t.Errorf("ExclusiveBackward(concat) = %v, want %v", got, want)
	}
}

func TestReduce(t *testing.T) {
	if got := Reduce(Add[int]{}, []int{1, 2, 3, 4}); got != 10 {
		t.Errorf("Reduce(+) = %d, want 10", got)
	}
	if got := Reduce(MaxIntOp, []int{3, 9, 2}); got != 9 {
		t.Errorf("Reduce(max) = %d, want 9", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	Exclusive(Add[int]{}, make([]int, 3), make([]int, 4))
}
