package scan

import (
	"reflect"
	"testing"
)

// FuzzSegmentedAgainstDirect checks the paper's §3.4 claim — that the
// segmented scans can be simulated with just the two primitive scans —
// against the direct pair-monoid implementation on arbitrary
// flag/value vectors. The two byte strings are the fuzz raw material:
// one byte per element, values masked to stay within the bit budget
// the Figure 16 packing requires, flags taken from the low bit of the
// second string (cycled when shorter than the values).
func FuzzSegmentedAgainstDirect(f *testing.F) {
	// Seed corpus: the paper's Figure 4 example, degenerate shapes, and
	// a vector long enough to cross parallel block boundaries.
	f.Add([]byte{5, 1, 3, 4, 3, 9, 2, 6}, []byte{1, 0, 1, 0, 0, 0, 1, 0})
	f.Add([]byte{}, []byte{})
	f.Add([]byte{7}, []byte{0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{1, 1, 1, 1, 1, 1, 1, 1})
	f.Add([]byte{9, 9, 9, 9}, []byte{0})
	long := make([]byte, 3000)
	for i := range long {
		long[i] = byte(i * 37)
	}
	f.Add(long, []byte{0, 0, 0, 0, 0, 1})

	f.Fuzz(func(t *testing.T, valBytes, flagBytes []byte) {
		n := len(valBytes)
		values := make([]int, n)
		for i, b := range valBytes {
			values[i] = int(b & 0x3f) // non-negative, small: fits any packing
		}
		flags := make([]bool, n)
		for i := range flags {
			if len(flagBytes) > 0 {
				flags[i] = flagBytes[i%len(flagBytes)]&1 == 1
			}
		}

		// Segmented +-scan: §3.4 simulation vs direct kernel.
		wantSum := make([]int, n)
		SegExclusive(Add[int]{}, wantSum, values, flags)
		gotSum := make([]int, n)
		SegSumViaPrimitives(gotSum, values, flags)
		if !reflect.DeepEqual(gotSum, wantSum) {
			t.Errorf("SegSumViaPrimitives = %v, want %v (values=%v flags=%v)",
				gotSum, wantSum, values, flags)
		}

		// Segmented max-scan: Figure 16 simulation vs direct kernel.
		// The simulation writes the identity 0 at segment heads, which
		// matches the direct kernel with identity 0 on non-negative data.
		wantMax := make([]int, n)
		SegExclusive(Max[int]{Id: 0}, wantMax, values, flags)
		gotMax := make([]int, n)
		SegMaxViaPrimitives(gotMax, values, flags)
		if !reflect.DeepEqual(gotMax, wantMax) {
			t.Errorf("SegMaxViaPrimitives = %v, want %v (values=%v flags=%v)",
				gotMax, wantMax, values, flags)
		}

		// While we have random segmented inputs: the parallel kernels
		// (forward and backward) must agree with the serial ones too.
		got := make([]int, n)
		SegExclusiveParallel(Add[int]{}, got, values, flags, 3)
		if !reflect.DeepEqual(got, wantSum) {
			t.Errorf("SegExclusiveParallel differs from serial (values=%v flags=%v)", values, flags)
		}
		wantBack := make([]int, n)
		SegExclusiveBackward(Add[int]{}, wantBack, values, flags)
		SegExclusiveBackwardParallel(Add[int]{}, got, values, flags, 3)
		if !reflect.DeepEqual(got, wantBack) {
			t.Errorf("SegExclusiveBackwardParallel differs from serial (values=%v flags=%v)", values, flags)
		}
	})
}
