package scan

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomInput returns n pseudo-random small ints (deterministic seed).
func randomInput(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	a := make([]int, n)
	for i := range a {
		a[i] = rng.Intn(1000)
	}
	return a
}

// randomFlags returns n pseudo-random flags with the given density.
func randomFlags(n int, density float64, seed int64) []bool {
	rng := rand.New(rand.NewSource(seed))
	f := make([]bool, n)
	for i := range f {
		f[i] = rng.Float64() < density
	}
	return f
}

var parallelSizes = []int{0, 1, 2, 3, 100, parallelThreshold - 1, parallelThreshold, parallelThreshold + 1, 10000, 65536}

func TestExclusiveParallelMatchesSerial(t *testing.T) {
	for _, n := range parallelSizes {
		for _, p := range []int{0, 1, 2, 3, 7, 16} {
			a := randomInput(n, int64(n)+int64(p))
			want := make([]int, n)
			Exclusive(Add[int]{}, want, a)
			got := make([]int, n)
			ExclusiveParallel(Add[int]{}, got, a, p)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d p=%d: parallel exclusive sum differs from serial", n, p)
			}
		}
	}
}

func TestExclusiveParallelMax(t *testing.T) {
	for _, n := range parallelSizes {
		a := randomInput(n, int64(n)*3+1)
		want := make([]int, n)
		Exclusive(MaxIntOp, want, a)
		got := make([]int, n)
		ExclusiveParallel(MaxIntOp, got, a, 5)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: parallel exclusive max differs from serial", n)
		}
	}
}

func TestInclusiveParallelMatchesSerial(t *testing.T) {
	for _, n := range parallelSizes {
		a := randomInput(n, int64(n)+42)
		want := make([]int, n)
		Inclusive(Add[int]{}, want, a)
		got := make([]int, n)
		InclusiveParallel(Add[int]{}, got, a, 4)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: parallel inclusive differs from serial", n)
		}
	}
}

func TestExclusiveBackwardParallelMatchesSerial(t *testing.T) {
	for _, n := range parallelSizes {
		for _, p := range []int{1, 2, 8} {
			a := randomInput(n, int64(n)+int64(p)*11)
			want := make([]int, n)
			ExclusiveBackward(Add[int]{}, want, a)
			got := make([]int, n)
			ExclusiveBackwardParallel(Add[int]{}, got, a, p)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d p=%d: parallel backward differs from serial", n, p)
			}
		}
	}
}

func TestExclusiveBackwardParallelNonCommutative(t *testing.T) {
	// Backward scans over a non-commutative monoid exercise the operand
	// order of the block combination step.
	op := Func[string]{Id: "", F: func(a, b string) string { return a + b }}
	n := parallelThreshold * 2
	a := make([]string, n)
	letters := "abcdefg"
	for i := range a {
		a[i] = string(letters[i%len(letters)])
	}
	want := make([]string, n)
	ExclusiveBackward(op, want, a)
	got := make([]string, n)
	ExclusiveBackwardParallel(op, got, a, 6)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("parallel backward over non-commutative op differs from serial")
	}
}

func TestReduceParallel(t *testing.T) {
	for _, n := range parallelSizes {
		a := randomInput(n, 7)
		if got, want := ReduceParallel(Add[int]{}, a, 4), Reduce(Add[int]{}, a); got != want {
			t.Fatalf("n=%d: ReduceParallel = %d, want %d", n, got, want)
		}
	}
}

func TestSegExclusiveParallelMatchesSerial(t *testing.T) {
	for _, n := range parallelSizes {
		for _, density := range []float64{0, 0.001, 0.1, 0.9, 1} {
			a := randomInput(n, int64(n)+int64(density*100))
			flags := randomFlags(n, density, int64(n)*2+int64(density*10))
			want := make([]int, n)
			SegExclusive(Add[int]{}, want, a, flags)
			got := make([]int, n)
			SegExclusiveParallel(Add[int]{}, got, a, flags, 5)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d density=%g: parallel segmented exclusive differs", n, density)
			}
		}
	}
}

func TestSegInclusiveParallelMatchesSerial(t *testing.T) {
	for _, n := range parallelSizes {
		a := randomInput(n, int64(n)+5)
		flags := randomFlags(n, 0.05, int64(n)+6)
		want := make([]int, n)
		SegInclusive(MaxIntOp, want, a, flags)
		got := make([]int, n)
		SegInclusiveParallel(MaxIntOp, got, a, flags, 7)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: parallel segmented inclusive max differs", n)
		}
	}
}

func TestSegExclusiveBackwardParallelMatchesSerial(t *testing.T) {
	for _, n := range parallelSizes {
		for _, density := range []float64{0, 0.001, 0.1, 0.9, 1} {
			for _, p := range []int{1, 2, 5, 16} {
				a := randomInput(n, int64(n)+int64(p)+int64(density*100))
				flags := randomFlags(n, density, int64(n)*3+int64(p))
				want := make([]int, n)
				SegExclusiveBackward(Add[int]{}, want, a, flags)
				got := make([]int, n)
				SegExclusiveBackwardParallel(Add[int]{}, got, a, flags, p)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("n=%d density=%g p=%d: parallel backward segmented exclusive differs", n, density, p)
				}
			}
		}
	}
}

func TestSegInclusiveBackwardParallelMatchesSerial(t *testing.T) {
	for _, n := range parallelSizes {
		for _, density := range []float64{0, 0.05, 0.5} {
			a := randomInput(n, int64(n)+17)
			flags := randomFlags(n, density, int64(n)+18)
			want := make([]int, n)
			SegInclusiveBackward(MaxIntOp, want, a, flags)
			got := make([]int, n)
			SegInclusiveBackwardParallel(MaxIntOp, got, a, flags, 6)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d density=%g: parallel backward segmented inclusive max differs", n, density)
			}
		}
	}
}

func TestSegBackwardParallelNonCommutative(t *testing.T) {
	// Backward segmented scans over string concatenation exercise both the
	// operand order and the head-cutoff logic of the carry combination.
	op := Func[string]{Id: "", F: func(a, b string) string { return a + b }}
	n := parallelThreshold * 2
	a := make([]string, n)
	letters := "abcdefg"
	for i := range a {
		a[i] = string(letters[i%len(letters)])
	}
	flags := randomFlags(n, 0.3, 99)
	want := make([]string, n)
	SegExclusiveBackward(op, want, a, flags)
	got := make([]string, n)
	SegExclusiveBackwardParallel(op, got, a, flags, 7)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("parallel backward segmented scan over non-commutative op differs from serial")
	}
}

func TestSegBackwardParallelSegmentSpanningBlocks(t *testing.T) {
	// A single segment head near the end: every block left of it must be
	// seeded with the suffix sum up to (not across) the head.
	n := parallelThreshold * 3
	a := make([]int, n)
	for i := range a {
		a[i] = 1
	}
	flags := make([]bool, n)
	flags[n-2] = true
	want := make([]int, n)
	SegExclusiveBackward(Add[int]{}, want, a, flags)
	got := make([]int, n)
	SegExclusiveBackwardParallel(Add[int]{}, got, a, flags, 8)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("backward segment spanning block boundaries mishandled")
	}
}

func TestSegParallelSegmentSpanningBlocks(t *testing.T) {
	// One huge segment starting in block 0 must carry across every block
	// boundary: all flags false except position 1.
	n := parallelThreshold * 3
	a := make([]int, n)
	for i := range a {
		a[i] = 1
	}
	flags := make([]bool, n)
	flags[1] = true
	want := make([]int, n)
	SegExclusive(Add[int]{}, want, a, flags)
	got := make([]int, n)
	SegExclusiveParallel(Add[int]{}, got, a, flags, 8)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("segment spanning block boundaries mishandled")
	}
}

func TestSegCopyParallelMatchesSerial(t *testing.T) {
	for _, n := range parallelSizes {
		for _, p := range []int{1, 4, 0} {
			src := randomInput(n, int64(n)+21)
			flags := randomFlags(n, 0.03, int64(n)+22)
			want := make([]int, n)
			var cur int
			for i := 0; i < n; i++ {
				if flags[i] || i == 0 {
					cur = src[i]
				}
				want[i] = cur
			}
			got := make([]int, n)
			SegCopyParallel(got, src, flags, p)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d p=%d: SegCopyParallel differs", n, p)
			}
		}
	}
}

func TestSegBackCopyParallelMatchesSerial(t *testing.T) {
	for _, n := range parallelSizes {
		for _, p := range []int{1, 4, 0} {
			src := randomInput(n, int64(n)+31)
			flags := randomFlags(n, 0.03, int64(n)+32)
			want := make([]int, n)
			var cur int
			for i := n - 1; i >= 0; i-- {
				if i == n-1 || flags[i+1] {
					cur = src[i]
				}
				want[i] = cur
			}
			got := make([]int, n)
			SegBackCopyParallel(got, src, flags, p)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d p=%d: SegBackCopyParallel differs", n, p)
			}
		}
	}
}

func TestCopyOpsAssociative(t *testing.T) {
	// Both copy-monoid operators must be associative for the parallel
	// kernels; check all 2^3 tag combinations of a triple.
	vals := []int{3, 5, 7}
	for m := 0; m < 8; m++ {
		var ps [3]copyPair[int]
		for i := 0; i < 3; i++ {
			ps[i] = copyPair[int]{set: m&(1<<i) != 0, v: vals[i]}
		}
		last := copyOp[int]{}
		if l, r := last.Combine(last.Combine(ps[0], ps[1]), ps[2]), last.Combine(ps[0], last.Combine(ps[1], ps[2])); l != r {
			t.Errorf("copyOp not associative for mask %b", m)
		}
		first := copyFirstOp[int]{}
		if l, r := first.Combine(first.Combine(ps[0], ps[1]), ps[2]), first.Combine(ps[0], first.Combine(ps[1], ps[2])); l != r {
			t.Errorf("copyFirstOp not associative for mask %b", m)
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("Workers(3) != 3")
	}
	if Workers(0) < 1 {
		t.Error("Workers(0) < 1")
	}
	if Workers(-1) < 1 {
		t.Error("Workers(-1) < 1")
	}
}
