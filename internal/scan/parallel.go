package scan

import (
	"runtime"
	"sync"
)

// parallelThreshold is the input size below which the parallel kernels
// fall back to the serial ones: for small inputs goroutine startup and
// synchronization dominate the O(n) work.
const parallelThreshold = 4096

// Workers reports the number of worker goroutines the parallel kernels
// use when the caller passes p <= 0: the GOMAXPROCS setting.
func Workers(p int) int {
	if p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// blocks partitions [0, n) into p near-equal contiguous half-open
// intervals and calls f(b, lo, hi) for each, concurrently. It is the
// "assign each processor a contiguous block of elements" rule of the
// paper's Figure 10.
func blocks(n, p int, f func(b, lo, hi int)) {
	var wg sync.WaitGroup
	wg.Add(p)
	for b := 0; b < p; b++ {
		lo := b * n / p
		hi := (b + 1) * n / p
		go func(b, lo, hi int) {
			defer wg.Done()
			f(b, lo, hi)
		}(b, lo, hi)
	}
	wg.Wait()
}

// ExclusiveParallel computes the same result as Exclusive using p worker
// goroutines (p <= 0 means GOMAXPROCS). It is the classic three-phase
// blocked scan of the paper's Figure 10: each worker reduces its block,
// the per-block sums are scanned serially (p is small), and each worker
// rescans its block seeded with its offset. dst may alias src.
func ExclusiveParallel[T any, O Op[T]](op O, dst, src []T, p int) {
	n := len(src)
	checkLen("ExclusiveParallel", len(dst), n)
	p = Workers(p)
	if p <= 1 || n < parallelThreshold {
		Exclusive(op, dst, src)
		return
	}
	if p > n {
		p = n
	}
	sums := make([]T, p)
	blocks(n, p, func(b, lo, hi int) {
		sums[b] = Reduce(op, src[lo:hi])
	})
	Exclusive(op, sums, sums)
	blocks(n, p, func(b, lo, hi int) {
		acc := sums[b]
		for i := lo; i < hi; i++ {
			v := src[i]
			dst[i] = acc
			acc = op.Combine(acc, v)
		}
	})
}

// InclusiveParallel computes the same result as Inclusive using p worker
// goroutines (p <= 0 means GOMAXPROCS). dst may alias src.
func InclusiveParallel[T any, O Op[T]](op O, dst, src []T, p int) {
	n := len(src)
	checkLen("InclusiveParallel", len(dst), n)
	p = Workers(p)
	if p <= 1 || n < parallelThreshold {
		Inclusive(op, dst, src)
		return
	}
	if p > n {
		p = n
	}
	sums := make([]T, p)
	blocks(n, p, func(b, lo, hi int) {
		sums[b] = Reduce(op, src[lo:hi])
	})
	Exclusive(op, sums, sums)
	blocks(n, p, func(b, lo, hi int) {
		acc := sums[b]
		for i := lo; i < hi; i++ {
			acc = op.Combine(acc, src[i])
			dst[i] = acc
		}
	})
}

// ExclusiveBackwardParallel computes the same result as ExclusiveBackward
// using p worker goroutines. dst may alias src.
func ExclusiveBackwardParallel[T any, O Op[T]](op O, dst, src []T, p int) {
	n := len(src)
	checkLen("ExclusiveBackwardParallel", len(dst), n)
	p = Workers(p)
	if p <= 1 || n < parallelThreshold {
		ExclusiveBackward(op, dst, src)
		return
	}
	if p > n {
		p = n
	}
	sums := make([]T, p)
	blocks(n, p, func(b, lo, hi int) {
		acc := op.Identity()
		for i := hi - 1; i >= lo; i-- {
			acc = op.Combine(src[i], acc)
		}
		sums[b] = acc
	})
	// Backward exclusive scan of the p block sums, serially.
	acc := op.Identity()
	for b := p - 1; b >= 0; b-- {
		s := sums[b]
		sums[b] = acc
		acc = op.Combine(s, acc)
	}
	blocks(n, p, func(b, lo, hi int) {
		acc := sums[b]
		for i := hi - 1; i >= lo; i-- {
			v := src[i]
			dst[i] = acc
			acc = op.Combine(v, acc)
		}
	})
}

// ReduceParallel returns the reduction of src using p worker goroutines.
func ReduceParallel[T any, O Op[T]](op O, src []T, p int) T {
	n := len(src)
	p = Workers(p)
	if p <= 1 || n < parallelThreshold {
		return Reduce(op, src)
	}
	if p > n {
		p = n
	}
	sums := make([]T, p)
	blocks(n, p, func(b, lo, hi int) {
		sums[b] = Reduce(op, src[lo:hi])
	})
	return Reduce(op, sums)
}
