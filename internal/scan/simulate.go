package scan

import (
	"fmt"
	"math"
	"math/bits"
)

// This file implements the paper's §3.4: every scan used in the paper —
// min-scan, or-scan, and-scan, the backward scans, and both segmented
// scans — simulated using only the two primitive scans, integer +-scan
// and integer max-scan. The direct kernels elsewhere in this package are
// what production callers use; these constructions exist to validate the
// paper's claim and are tested for exact agreement with the direct
// kernels.

// MinScanViaMax computes the exclusive min-scan of src by complementing
// the source, running the primitive max-scan, and complementing the
// result, exactly as §3.4 prescribes ("inverting the source, executing a
// max-scan, and inverting the result"). Bitwise complement is
// order-reversing on two's-complement integers, so ^max(^a, ^b) =
// min(a, b), with no overflow cases. dst may alias src.
func MinScanViaMax(dst, src []int) {
	checkLen("MinScanViaMax", len(dst), len(src))
	tmp := make([]int, len(src))
	for i, v := range src {
		tmp[i] = ^v
	}
	ExclusiveMaxInts(tmp, tmp, ^MinIntOp.Id) // ^MaxInt == MinInt, max's identity
	for i, v := range tmp {
		dst[i] = ^v
	}
}

// OrScanViaMax computes the exclusive or-scan of src via a 1-bit
// max-scan, per §3.4 ("the or-scan ... can be implemented with a 1-bit
// max-scan").
func OrScanViaMax(dst, src []bool) {
	checkLen("OrScanViaMax", len(dst), len(src))
	tmp := make([]int, len(src))
	for i, v := range src {
		if v {
			tmp[i] = 1
		}
	}
	ExclusiveMaxInts(tmp, tmp, 0)
	for i, v := range tmp {
		dst[i] = v != 0
	}
}

// AndScanViaMin computes the exclusive and-scan of src via a 1-bit
// min-scan (itself simulated on the max-scan primitive), per §3.4.
func AndScanViaMin(dst, src []bool) {
	checkLen("AndScanViaMin", len(dst), len(src))
	tmp := make([]int, len(src))
	for i, v := range src {
		if v {
			tmp[i] = 1
		}
	}
	MinScanViaMax(tmp, tmp)
	// The min-scan identity is MaxInt; clamp the leading identity to 1
	// (and-scan's identity, true).
	for i, v := range tmp {
		dst[i] = v != 0
	}
}

// segKeyBits returns the number of low bits needed to hold every value of
// src, which must all be non-negative. The Fig 16 construction packs a
// segment number above the value in a single machine word; callers get a
// descriptive panic if the combination cannot fit.
func segKeyBits(what string, src []int, flags []bool) int {
	maxV := 0
	for i, v := range src {
		if v < 0 {
			panic(fmt.Sprintf("scan: %s: value %d at index %d is negative; the two-primitive segmented simulation packs values into unsigned bit fields", what, v, i))
		}
		if v > maxV {
			maxV = v
		}
	}
	k := bits.Len(uint(maxV))
	if k == 0 {
		k = 1
	}
	// Segment numbers run 1..#segments <= n+1.
	segBits := bits.Len(uint(len(src) + 1))
	if k+segBits > 62 {
		panic(fmt.Sprintf("scan: %s: need %d value bits + %d segment bits, exceeding one word", what, k, segBits))
	}
	_ = flags
	return k
}

// SegMaxViaPrimitives computes the segmented exclusive max-scan of
// non-negative ints using only the two primitive scans, following the
// paper's Figure 16: number the segments with a +-scan of the flags,
// append the segment number above each value, run one unsegmented
// max-scan, extract the low bits, and write the identity (0) at segment
// heads. dst may alias src.
func SegMaxViaPrimitives(dst, src []int, flags []bool) {
	n := len(src)
	checkLen("SegMaxViaPrimitives", len(dst), n)
	checkLen("SegMaxViaPrimitives flags", len(flags), n)
	if n == 0 {
		return
	}
	k := segKeyBits("SegMaxViaPrimitives", src, flags)
	// Seg-Number <- SFlag + enumerate(SFlag): the inclusive +-scan of the
	// flags, i.e. each element's 1-origin segment number.
	f := make([]int, n)
	for i, fl := range flags {
		if fl {
			f[i] = 1
		}
	}
	segnum := make([]int, n)
	ExclusiveSumInts(segnum, f)
	for i := range segnum {
		segnum[i] += f[i]
	}
	// B <- append(Seg-Number, A); C <- extract-bot(max-scan(B)).
	keys := make([]int, n)
	for i, v := range src {
		keys[i] = segnum[i]<<uint(k) | v
	}
	ExclusiveMaxInts(keys, keys, 0)
	mask := 1<<uint(k) - 1
	for i := range dst {
		if flags[i] || i == 0 {
			dst[i] = 0 // the identity at each segment head
		} else {
			dst[i] = keys[i] & mask
		}
	}
}

// segCopyViaPrimitives distributes the first element of each segment of
// src across the segment (inclusive: the head keeps its own value), built
// on SegMaxViaPrimitives per §2.2's copy recipe: mask all but the heads
// to the identity, scan, and put the head values back.
func segCopyViaPrimitives(dst, src []int, flags []bool) {
	n := len(src)
	masked := make([]int, n)
	for i, v := range src {
		if flags[i] || i == 0 {
			masked[i] = v
		}
	}
	SegMaxViaPrimitives(dst, masked, flags)
	for i := range dst {
		if flags[i] || i == 0 {
			dst[i] = masked[i]
		}
	}
}

// SegSumViaPrimitives computes the segmented exclusive +-scan of
// non-negative ints using only the two primitive scans, per §3.4:
// run one unsegmented +-scan, copy each segment head's prefix total
// across its segment, and subtract. dst may alias src.
func SegSumViaPrimitives(dst, src []int, flags []bool) {
	n := len(src)
	checkLen("SegSumViaPrimitives", len(dst), n)
	checkLen("SegSumViaPrimitives flags", len(flags), n)
	if n == 0 {
		return
	}
	for i, v := range src {
		if v < 0 {
			panic(fmt.Sprintf("scan: SegSumViaPrimitives: value %d at index %d is negative; the two-primitive segmented simulation requires non-negative values", v, i))
		}
	}
	prefix := make([]int, n)
	ExclusiveSumInts(prefix, src)
	headPrefix := make([]int, n)
	segCopyViaPrimitives(headPrefix, prefix, flags)
	for i := range dst {
		dst[i] = prefix[i] - headPrefix[i]
	}
}

// floatKey maps a float64 to an int64 whose signed order matches the
// float order: §3.4's "flipping the exponent and significand if the sign
// bit is set". IEEE 754 doubles already order like sign-magnitude
// integers, so negatives need all bits flipped and positives just need
// the sign bit treated as "large". NaNs have no place in a total order
// and are rejected by the callers.
func floatKey(f float64) int64 {
	bits := int64(math.Float64bits(f))
	if bits < 0 {
		// Negative: flip exponent and significand, keeping the sign bit
		// set so every negative sorts below every non-negative.
		return ^bits ^ (int64(-1) << 63)
	}
	return bits
}

// keyFloat inverts floatKey.
func keyFloat(k int64) float64 {
	if k < 0 {
		return math.Float64frombits(uint64(^(k ^ (int64(-1) << 63))))
	}
	return math.Float64frombits(uint64(k))
}

// FloatOrderKey exposes the §3.4 order-preserving float64→int64 mapping
// for other packages (the float radix sort builds on it). NaN panics.
func FloatOrderKey(f float64) int64 {
	if math.IsNaN(f) {
		panic("scan: FloatOrderKey: NaN has no position in the float order")
	}
	return floatKey(f)
}

// FloatFromOrderKey inverts FloatOrderKey.
func FloatFromOrderKey(k int64) float64 { return keyFloat(k) }

// FMaxViaIntScan computes the exclusive float64 max-scan using only the
// integer max-scan primitive, per §3.4. The identity is -Inf. NaN inputs
// panic: they have no position in the order the construction relies on.
func FMaxViaIntScan(dst, src []float64) {
	checkLen("FMaxViaIntScan", len(dst), len(src))
	keys := make([]int64, len(src))
	for i, f := range src {
		if math.IsNaN(f) {
			panic(fmt.Sprintf("scan: FMaxViaIntScan: NaN at index %d", i))
		}
		keys[i] = floatKey(f)
	}
	Exclusive(Max[int64]{Id: floatKey(math.Inf(-1))}, keys, keys)
	for i, k := range keys {
		dst[i] = keyFloat(k)
	}
}

// FMinViaIntScan computes the exclusive float64 min-scan on the integer
// max-scan primitive by negating the keys; identity +Inf.
func FMinViaIntScan(dst, src []float64) {
	checkLen("FMinViaIntScan", len(dst), len(src))
	keys := make([]int64, len(src))
	for i, f := range src {
		if math.IsNaN(f) {
			panic(fmt.Sprintf("scan: FMinViaIntScan: NaN at index %d", i))
		}
		keys[i] = ^floatKey(f)
	}
	Exclusive(Max[int64]{Id: ^floatKey(math.Inf(1))}, keys, keys)
	for i, k := range keys {
		dst[i] = keyFloat(^k)
	}
}

// BackwardViaReverse computes the backward exclusive scan of src using a
// forward scan over the reversed vector, per §3.4 ("the backward scans
// can be implemented by simply reading the vector into the processors in
// reverse order"). It exists to validate ExclusiveBackward. dst may alias
// src.
func BackwardViaReverse[T any, O Op[T]](op O, dst, src []T) {
	n := len(src)
	checkLen("BackwardViaReverse", len(dst), n)
	rev := make([]T, n)
	for i, v := range src {
		rev[n-1-i] = v
	}
	Exclusive(op, rev, rev)
	for i := range dst {
		dst[i] = rev[n-1-i]
	}
}
