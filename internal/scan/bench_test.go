package scan

import (
	"fmt"
	"testing"
)

func benchInput(n int) []int {
	a := make([]int, n)
	for i := range a {
		a[i] = i*2654435761 + 1
	}
	return a
}

func BenchmarkExclusiveSumSerial(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 16, 1 << 20} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a := benchInput(n)
			dst := make([]int, n)
			b.SetBytes(int64(n * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ExclusiveSumInts(dst, a)
			}
		})
	}
}

func BenchmarkExclusiveSumGeneric(b *testing.B) {
	for _, n := range []int{1 << 16, 1 << 20} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a := benchInput(n)
			dst := make([]int, n)
			b.SetBytes(int64(n * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Exclusive(Add[int]{}, dst, a)
			}
		})
	}
}

// BenchmarkAblationScanParallel sweeps worker counts for the parallel
// scan: the crossover between serial and parallel is a design parameter
// called out in DESIGN.md §3.
func BenchmarkAblationScanParallel(b *testing.B) {
	for _, n := range []int{1 << 16, 1 << 20, 1 << 24} {
		for _, p := range []int{1, 2, 4, 8, 0} {
			b.Run(fmt.Sprintf("n=%d/p=%d", n, p), func(b *testing.B) {
				a := benchInput(n)
				dst := make([]int, n)
				b.SetBytes(int64(n * 8))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ExclusiveParallel(Add[int]{}, dst, a, p)
				}
			})
		}
	}
}

// BenchmarkAblationSegmented compares the direct segmented kernel with
// the paper's §3.4 two-primitive simulation (DESIGN.md §3 ablation).
func BenchmarkAblationSegmented(b *testing.B) {
	n := 1 << 18
	a := make([]int, n)
	for i := range a {
		a[i] = i % 1024
	}
	flags := make([]bool, n)
	for i := 0; i < n; i += 37 {
		flags[i] = true
	}
	dst := make([]int, n)
	b.Run("direct", func(b *testing.B) {
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			SegExclusive(Add[int]{}, dst, a, flags)
		}
	})
	b.Run("via-two-primitives", func(b *testing.B) {
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			SegSumViaPrimitives(dst, a, flags)
		}
	})
	b.Run("direct-parallel", func(b *testing.B) {
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			SegExclusiveParallel(Add[int]{}, dst, a, flags, 0)
		}
	})
}

func BenchmarkSegExclusiveMax(b *testing.B) {
	n := 1 << 18
	a := benchInput(n)
	flags := make([]bool, n)
	for i := 0; i < n; i += 64 {
		flags[i] = true
	}
	dst := make([]int, n)
	b.SetBytes(int64(n * 8))
	for i := 0; i < b.N; i++ {
		SegExclusive(MaxIntOp, dst, a, flags)
	}
}

func BenchmarkReduceParallel(b *testing.B) {
	n := 1 << 22
	a := benchInput(n)
	for _, p := range []int{1, 0} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.SetBytes(int64(n * 8))
			for i := 0; i < b.N; i++ {
				ReduceParallel(Add[int]{}, a, p)
			}
		})
	}
}
