package scan

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// trickyFloats covers the IEEE edge cases of the §3.4 bit trick.
var trickyFloats = []float64{
	math.Inf(-1), -math.MaxFloat64, -1e10, -2.5, -1, -math.SmallestNonzeroFloat64,
	math.Copysign(0, -1), 0, math.SmallestNonzeroFloat64, 1, 2.5, 1e10,
	math.MaxFloat64, math.Inf(1),
}

func TestFloatKeyPreservesOrder(t *testing.T) {
	for i := 0; i < len(trickyFloats); i++ {
		for j := 0; j < len(trickyFloats); j++ {
			a, b := trickyFloats[i], trickyFloats[j]
			ka, kb := floatKey(a), floatKey(b)
			if (a < b) != (ka < kb) && a != b {
				t.Errorf("order broken: %g vs %g -> keys %d vs %d", a, b, ka, kb)
			}
		}
	}
}

func TestFloatKeyRoundTrips(t *testing.T) {
	for _, f := range trickyFloats {
		got := keyFloat(floatKey(f))
		if got != f && !(f == 0 && got == 0) { // -0 and +0 compare equal
			t.Errorf("round trip %g -> %g", f, got)
		}
		// The bit pattern must round-trip exactly, including -0.
		if math.Float64bits(got) != math.Float64bits(f) {
			t.Errorf("bit round trip %x -> %x", math.Float64bits(f), math.Float64bits(got))
		}
	}
}

func TestFloatKeyRoundTripsQuick(t *testing.T) {
	prop := func(bits uint64) bool {
		f := math.Float64frombits(bits)
		if math.IsNaN(f) {
			return true
		}
		return math.Float64bits(keyFloat(floatKey(f))) == bits
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFMaxViaIntScanMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, n := range []int{0, 1, 2, 17, 300} {
		src := make([]float64, n)
		for i := range src {
			src[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
			if rng.Intn(7) == 0 {
				src[i] = -src[i]
			}
		}
		want := make([]float64, n)
		Exclusive(MaxFloat64Op, want, src)
		got := make([]float64, n)
		FMaxViaIntScan(got, src)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: FMaxViaIntScan differs from direct", n)
		}
		wantMin := make([]float64, n)
		Exclusive(MinFloat64Op, wantMin, src)
		gotMin := make([]float64, n)
		FMinViaIntScan(gotMin, src)
		if !reflect.DeepEqual(gotMin, wantMin) {
			t.Fatalf("n=%d: FMinViaIntScan differs from direct", n)
		}
	}
}

func TestFMaxViaIntScanTrickyValues(t *testing.T) {
	src := append([]float64(nil), trickyFloats...)
	rng := rand.New(rand.NewSource(41))
	rng.Shuffle(len(src), func(i, j int) { src[i], src[j] = src[j], src[i] })
	want := make([]float64, len(src))
	Exclusive(MaxFloat64Op, want, src)
	got := make([]float64, len(src))
	FMaxViaIntScan(got, src)
	for i := range got {
		if got[i] != want[i] && !(math.IsInf(got[i], -1) && math.IsInf(want[i], -1)) {
			t.Errorf("index %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestFloatViaIntScanRejectsNaN(t *testing.T) {
	for name, f := range map[string]func(){
		"max": func() { FMaxViaIntScan(make([]float64, 2), []float64{1, math.NaN()}) },
		"min": func() { FMinViaIntScan(make([]float64, 2), []float64{1, math.NaN()}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on NaN", name)
				}
			}()
			f()
		}()
	}
}

func TestFloatKeySortAgreement(t *testing.T) {
	// Sorting by key must equal sorting by value for any NaN-free set.
	rng := rand.New(rand.NewSource(42))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	vals = append(vals, trickyFloats...)
	byKey := append([]float64(nil), vals...)
	sort.Slice(byKey, func(i, j int) bool { return floatKey(byKey[i]) < floatKey(byKey[j]) })
	byVal := append([]float64(nil), vals...)
	sort.Float64s(byVal)
	for i := range byVal {
		if byKey[i] != byVal[i] && !(byKey[i] == 0 && byVal[i] == 0) {
			t.Fatalf("index %d: key-sorted %g, value-sorted %g", i, byKey[i], byVal[i])
		}
	}
}
