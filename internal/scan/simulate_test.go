package scan

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestMinScanViaMax(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17, 100} {
		a := randomInput(n, int64(n)+99)
		for i := range a {
			a[i] -= 500 // negatives too: complement handles them
		}
		want := make([]int, n)
		Exclusive(MinIntOp, want, a)
		got := make([]int, n)
		MinScanViaMax(got, a)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: MinScanViaMax = %v, want %v", n, got, want)
		}
	}
}

func TestMinScanViaMaxExtremes(t *testing.T) {
	a := []int{math.MaxInt, math.MinInt, 0}
	want := make([]int, 3)
	Exclusive(MinIntOp, want, a)
	got := make([]int, 3)
	MinScanViaMax(got, a)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("extremes: MinScanViaMax = %v, want %v", got, want)
	}
}

func TestOrScanViaMax(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64} {
		f := randomFlags(n, 0.3, int64(n))
		want := make([]bool, n)
		Exclusive(Or{}, want, f)
		got := make([]bool, n)
		OrScanViaMax(got, f)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: OrScanViaMax = %v, want %v", n, got, want)
		}
	}
}

func TestAndScanViaMin(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64} {
		f := randomFlags(n, 0.7, int64(n)+1)
		want := make([]bool, n)
		Exclusive(And{}, want, f)
		got := make([]bool, n)
		AndScanViaMin(got, f)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: AndScanViaMin = %v, want %v", n, got, want)
		}
	}
}

func TestSegMaxViaPrimitivesFig16(t *testing.T) {
	// Paper Figure 16: A = [5 1 3 4 3 9 2 6], SFlag = [T F T F F F T F],
	// Result = [0 5 0 3 4 4 0 2].
	a := []int{5, 1, 3, 4, 3, 9, 2, 6}
	flags := []bool{true, false, true, false, false, false, true, false}
	got := make([]int, len(a))
	SegMaxViaPrimitives(got, a, flags)
	want := []int{0, 5, 0, 3, 4, 4, 0, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Fig 16: SegMaxViaPrimitives = %v, want %v", got, want)
	}
}

func TestSegMaxViaPrimitivesMatchesDirect(t *testing.T) {
	for _, n := range []int{0, 1, 2, 33, 500} {
		a := randomInput(n, int64(n)+3)
		flags := randomFlags(n, 0.2, int64(n)+4)
		want := make([]int, n)
		SegExclusive(Max[int]{Id: 0}, want, a, flags)
		got := make([]int, n)
		SegMaxViaPrimitives(got, a, flags)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: via-primitives differs from direct segmented max", n)
		}
	}
}

func TestSegSumViaPrimitivesMatchesDirect(t *testing.T) {
	for _, n := range []int{0, 1, 2, 33, 500} {
		a := randomInput(n, int64(n)+13)
		flags := randomFlags(n, 0.2, int64(n)+14)
		want := make([]int, n)
		SegExclusive(Add[int]{}, want, a, flags)
		got := make([]int, n)
		SegSumViaPrimitives(got, a, flags)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: via-primitives differs from direct segmented sum", n)
		}
	}
}

func TestSegSumViaPrimitivesFig4(t *testing.T) {
	got := make([]int, len(fig4A))
	SegSumViaPrimitives(got, fig4A, fig4Sb)
	want := []int{0, 5, 0, 3, 7, 10, 0, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Fig 4 via primitives = %v, want %v", got, want)
	}
}

func TestSegViaPrimitivesRejectsNegative(t *testing.T) {
	for name, f := range map[string]func(){
		"max": func() { SegMaxViaPrimitives(make([]int, 2), []int{1, -1}, []bool{true, false}) },
		"sum": func() { SegSumViaPrimitives(make([]int, 2), []int{1, -1}, []bool{true, false}) },
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s: expected panic on negative value", name)
					return
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "negative") {
					t.Errorf("%s: panic message %v not descriptive", name, r)
				}
			}()
			f()
		}()
	}
}

func TestBackwardViaReverse(t *testing.T) {
	for _, n := range []int{0, 1, 7, 256} {
		a := randomInput(n, int64(n)+77)
		want := make([]int, n)
		ExclusiveBackward(Add[int]{}, want, a)
		got := make([]int, n)
		BackwardViaReverse(Add[int]{}, got, a)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: BackwardViaReverse differs from direct", n)
		}
	}
}
