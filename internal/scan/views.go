package scan

// View-based segmented scans: the gather-free form of the segmented
// kernels. A fused batch is a list of Views — each one request's
// payload, living in its own (request-owned) buffer — and each view is
// one segment. The kernels below run the same three-phase blocked pass
// as SegExclusiveParallel and friends directly over the views'
// concatenated index space: block boundaries may fall anywhere
// (including mid-view), per-block summaries combine under the
// segmented-pair monoid, and the serial scan of the p summaries
// stitches blocks exactly like Figure 10's block sums. No flat src/flags
// vectors are ever materialized, which is what makes the serving path
// zero-copy (see internal/serve/batch.go).
//
// A seeded view continues a running prefix (a stream chunk's carry, or
// a cluster shard's locally-computed seed): its accumulation starts
// from Carry instead of the identity, at the head for forward scans and
// at the tail for backward scans. This is algebraically identical to
// the phantom-element injection the flat path used — an exclusive scan
// of [c, a0, a1, ...] restarted at the head yields [id, c, c⊕a0, ...],
// whose payload slots are exactly the exclusive scan of [a0, a1, ...]
// seeded with c — but costs no extra slot.
//
// Zero-length views contribute no elements and no segment boundary;
// they are skipped entirely.

// View describes one segment of a fused batch: dst receives the scan of
// src (they may alias each other, but must not overlap any other
// view's buffers), and Carry seeds the accumulation when Seeded is set.
type View[T any] struct {
	Dst, Src []T
	Carry    T
	Seeded   bool
}

// seed returns the accumulator a view's segment starts from.
func viewSeed[T any, O Op[T]](op O, vw *View[T]) T {
	if vw.Seeded {
		return vw.Carry
	}
	return op.Identity()
}

// viewsTotal validates every view (len(Dst) == len(Src)) and returns
// the total element count across views.
func viewsTotal[T any](name string, views []View[T]) int {
	n := 0
	for i := range views {
		checkLen(name, len(views[i].Dst), len(views[i].Src))
		n += len(views[i].Src)
	}
	return n
}

// locateViewStart returns the index vi of the (non-empty) view
// containing global element g, plus the global index of that view's
// first element. g must be < the total element count.
func locateViewStart[T any](views []View[T], g int) (vi, viewStart int) {
	for g >= viewStart+len(views[vi].Src) {
		viewStart += len(views[vi].Src)
		vi++
	}
	return vi, viewStart
}

// SegScanViewsExclusive computes, for each view independently, the
// exclusive scan of Src into Dst (seeded views start from Carry), using
// p worker goroutines over the concatenated index space (p <= 0 means
// GOMAXPROCS). Equivalent to flattening the views into one vector with
// a segment head per view and running SegExclusiveParallel.
func SegScanViewsExclusive[T any, O Op[T]](op O, views []View[T], p int) {
	n := viewsTotal("SegScanViewsExclusive", views)
	p = Workers(p)
	if p <= 1 || n < parallelThreshold {
		for i := range views {
			vw := &views[i]
			acc := viewSeed(op, vw)
			for k, v := range vw.Src {
				vw.Dst[k] = acc
				acc = op.Combine(acc, v)
			}
		}
		return
	}
	if p > n {
		p = n
	}
	carries := segViewCarriesForward(op, views, n, p)
	blocks(n, p, func(b, lo, hi int) {
		vi, viewStart := locateViewStart(views, lo)
		acc := carries[b].v
		for g := lo; g < hi; {
			vw := &views[vi]
			if len(vw.Src) == 0 {
				vi++
				continue
			}
			s := g - viewStart
			e := len(vw.Src)
			if viewStart+e > hi {
				e = hi - viewStart
			}
			if s == 0 {
				acc = viewSeed(op, vw)
			}
			for k := s; k < e; k++ {
				v := vw.Src[k]
				vw.Dst[k] = acc
				acc = op.Combine(acc, v)
			}
			g = viewStart + e
			viewStart += len(vw.Src)
			vi++
		}
	})
}

// SegScanViewsInclusive is the inclusive form of SegScanViewsExclusive.
func SegScanViewsInclusive[T any, O Op[T]](op O, views []View[T], p int) {
	n := viewsTotal("SegScanViewsInclusive", views)
	p = Workers(p)
	if p <= 1 || n < parallelThreshold {
		for i := range views {
			vw := &views[i]
			acc := viewSeed(op, vw)
			for k, v := range vw.Src {
				acc = op.Combine(acc, v)
				vw.Dst[k] = acc
			}
		}
		return
	}
	if p > n {
		p = n
	}
	carries := segViewCarriesForward(op, views, n, p)
	blocks(n, p, func(b, lo, hi int) {
		vi, viewStart := locateViewStart(views, lo)
		acc := carries[b].v
		for g := lo; g < hi; {
			vw := &views[vi]
			if len(vw.Src) == 0 {
				vi++
				continue
			}
			s := g - viewStart
			e := len(vw.Src)
			if viewStart+e > hi {
				e = hi - viewStart
			}
			if s == 0 {
				acc = viewSeed(op, vw)
			}
			for k := s; k < e; k++ {
				acc = op.Combine(acc, vw.Src[k])
				vw.Dst[k] = acc
			}
			g = viewStart + e
			viewStart += len(vw.Src)
			vi++
		}
	})
}

// SegScanViewsExclusiveBackward computes, for each view independently,
// the backward exclusive scan of Src into Dst: within a view, Dst[i]
// combines the elements strictly after i, and a seeded view's carry
// enters at the tail (the phantom-appended-element model of the flat
// path, without the slot).
func SegScanViewsExclusiveBackward[T any, O Op[T]](op O, views []View[T], p int) {
	n := viewsTotal("SegScanViewsExclusiveBackward", views)
	p = Workers(p)
	if p <= 1 || n < parallelThreshold {
		for i := range views {
			vw := &views[i]
			acc := viewSeed(op, vw)
			for k := len(vw.Src) - 1; k >= 0; k-- {
				v := vw.Src[k]
				vw.Dst[k] = acc
				acc = op.Combine(v, acc)
			}
		}
		return
	}
	if p > n {
		p = n
	}
	carries := segViewCarriesBackward(op, views, n, p)
	blocks(n, p, func(b, lo, hi int) {
		vi, viewStart := locateViewStart(views, hi-1)
		acc := carries[b].v
		for g := hi; g > lo; {
			vw := &views[vi]
			if len(vw.Src) == 0 {
				vi--
				viewStart -= len(views[vi].Src)
				continue
			}
			s := lo - viewStart
			if s < 0 {
				s = 0
			}
			e := g - viewStart
			if e == len(vw.Src) && vw.Seeded {
				// Entering the view at its tail: fold the carry in, as
				// if a phantom element held it just past the last slot.
				acc = op.Combine(vw.Carry, acc)
			}
			for k := e - 1; k >= s; k-- {
				v := vw.Src[k]
				vw.Dst[k] = acc
				acc = op.Combine(v, acc)
			}
			if s == 0 {
				acc = op.Identity()
			}
			g = viewStart + s
			vi--
			if vi >= 0 {
				viewStart -= len(views[vi].Src)
			}
		}
	})
}

// SegScanViewsInclusiveBackward is the inclusive form of
// SegScanViewsExclusiveBackward.
func SegScanViewsInclusiveBackward[T any, O Op[T]](op O, views []View[T], p int) {
	n := viewsTotal("SegScanViewsInclusiveBackward", views)
	p = Workers(p)
	if p <= 1 || n < parallelThreshold {
		for i := range views {
			vw := &views[i]
			acc := viewSeed(op, vw)
			for k := len(vw.Src) - 1; k >= 0; k-- {
				acc = op.Combine(vw.Src[k], acc)
				vw.Dst[k] = acc
			}
		}
		return
	}
	if p > n {
		p = n
	}
	carries := segViewCarriesBackward(op, views, n, p)
	blocks(n, p, func(b, lo, hi int) {
		vi, viewStart := locateViewStart(views, hi-1)
		acc := carries[b].v
		for g := hi; g > lo; {
			vw := &views[vi]
			if len(vw.Src) == 0 {
				vi--
				viewStart -= len(views[vi].Src)
				continue
			}
			s := lo - viewStart
			if s < 0 {
				s = 0
			}
			e := g - viewStart
			if e == len(vw.Src) && vw.Seeded {
				acc = op.Combine(vw.Carry, acc)
			}
			for k := e - 1; k >= s; k-- {
				acc = op.Combine(vw.Src[k], acc)
				vw.Dst[k] = acc
			}
			if s == 0 {
				acc = op.Identity()
			}
			g = viewStart + s
			vi--
			if vi >= 0 {
				viewStart -= len(views[vi].Src)
			}
		}
	})
}

// segViewCarriesForward runs phases 1+2 of the forward view scans: each
// block folds its elements under the segmented-pair monoid (a view head
// inside the block restarts the fold from the view's seed and marks the
// summary crossed), then the p summaries are scanned exclusively,
// leaving carries[b] = the accumulation open at block b's left edge.
func segViewCarriesForward[T any, O Op[T]](op O, views []View[T], n, p int) []segPair[T] {
	sop := segOp[T, O]{op}
	carries := make([]segPair[T], p)
	blocks(n, p, func(b, lo, hi int) {
		vi, viewStart := locateViewStart(views, lo)
		acc := sop.Identity()
		for g := lo; g < hi; {
			vw := &views[vi]
			if len(vw.Src) == 0 {
				vi++
				continue
			}
			s := g - viewStart
			e := len(vw.Src)
			if viewStart+e > hi {
				e = hi - viewStart
			}
			if s == 0 {
				a := viewSeed(op, vw)
				for k := 0; k < e; k++ {
					a = op.Combine(a, vw.Src[k])
				}
				acc = segPair[T]{v: a, crossed: true}
			} else {
				a := vw.Src[s]
				for k := s + 1; k < e; k++ {
					a = op.Combine(a, vw.Src[k])
				}
				acc = segPair[T]{v: op.Combine(acc.v, a), crossed: acc.crossed}
			}
			g = viewStart + e
			viewStart += len(vw.Src)
			vi++
		}
		carries[b] = acc
	})
	Exclusive(sop, carries, carries)
	return carries
}

// segViewCarriesBackward is the backward mirror: per-block backward
// folds (a seeded view's carry joins when the block covers the view's
// tail; a view head inside the block restarts and marks crossed), then
// the serial backward exclusive scan of the summaries under the mirror
// combine — a head anywhere in the left operand hides everything to its
// right — leaving carries[b] = the accumulation open at block b's RIGHT
// edge.
func segViewCarriesBackward[T any, O Op[T]](op O, views []View[T], n, p int) []segPair[T] {
	carries := make([]segPair[T], p)
	blocks(n, p, func(b, lo, hi int) {
		vi, viewStart := locateViewStart(views, hi-1)
		acc := op.Identity()
		crossed := false
		for g := hi; g > lo; {
			vw := &views[vi]
			if len(vw.Src) == 0 {
				vi--
				viewStart -= len(views[vi].Src)
				continue
			}
			s := lo - viewStart
			if s < 0 {
				s = 0
			}
			e := g - viewStart
			if e == len(vw.Src) && vw.Seeded {
				acc = op.Combine(vw.Carry, acc)
			}
			for k := e - 1; k >= s; k-- {
				acc = op.Combine(vw.Src[k], acc)
			}
			if s == 0 {
				crossed = true
				acc = op.Identity()
			}
			g = viewStart + s
			vi--
			if vi >= 0 {
				viewStart -= len(views[vi].Src)
			}
		}
		carries[b] = segPair[T]{v: acc, crossed: crossed}
	})
	acc := segPair[T]{v: op.Identity()}
	for b := p - 1; b >= 0; b-- {
		s := carries[b]
		carries[b] = acc
		if s.crossed {
			acc = segPair[T]{v: s.v, crossed: true}
		} else {
			acc = segPair[T]{v: op.Combine(s.v, acc.v), crossed: acc.crossed}
		}
	}
	return carries
}
