package scan

import "fmt"

// checkLen panics unless dst and src have the same length. Scans are
// length-preserving by definition, so a mismatch is a programming error.
func checkLen(what string, dst, n int) {
	if dst != n {
		panic(fmt.Sprintf("scan: %s: dst length %d != src length %d", what, dst, n))
	}
}

// Exclusive computes the exclusive scan of src into dst:
// dst[i] = src[0] ⊕ ... ⊕ src[i-1], with dst[0] = op.Identity().
// dst may alias src. dst must have the same length as src.
func Exclusive[T any, O Op[T]](op O, dst, src []T) {
	checkLen("Exclusive", len(dst), len(src))
	acc := op.Identity()
	for i, v := range src {
		dst[i] = acc
		acc = op.Combine(acc, v)
	}
}

// Inclusive computes the inclusive scan of src into dst:
// dst[i] = src[0] ⊕ ... ⊕ src[i]. dst may alias src.
func Inclusive[T any, O Op[T]](op O, dst, src []T) {
	checkLen("Inclusive", len(dst), len(src))
	acc := op.Identity()
	for i, v := range src {
		acc = op.Combine(acc, v)
		dst[i] = acc
	}
}

// ExclusiveBackward computes the backward exclusive scan of src into dst:
// dst[i] = src[i+1] ⊕ ... ⊕ src[n-1], with dst[n-1] = op.Identity().
// This is the paper's "back-scan", used e.g. by back-enumerate in split
// and by min-backscan in the halving merge. dst may alias src.
func ExclusiveBackward[T any, O Op[T]](op O, dst, src []T) {
	checkLen("ExclusiveBackward", len(dst), len(src))
	acc := op.Identity()
	for i := len(src) - 1; i >= 0; i-- {
		v := src[i]
		dst[i] = acc
		acc = op.Combine(v, acc)
	}
}

// InclusiveBackward computes the backward inclusive scan of src into dst:
// dst[i] = src[i] ⊕ ... ⊕ src[n-1]. dst may alias src.
func InclusiveBackward[T any, O Op[T]](op O, dst, src []T) {
	checkLen("InclusiveBackward", len(dst), len(src))
	acc := op.Identity()
	for i := len(src) - 1; i >= 0; i-- {
		acc = op.Combine(src[i], acc)
		dst[i] = acc
	}
}

// Reduce returns src[0] ⊕ ... ⊕ src[n-1], or the identity for an empty
// slice.
func Reduce[T any, O Op[T]](op O, src []T) T {
	acc := op.Identity()
	for _, v := range src {
		acc = op.Combine(acc, v)
	}
	return acc
}

// ExclusiveSumInts is a hand-specialized exclusive +-scan over int,
// the hot path of nearly every algorithm in the paper (enumerate,
// allocate, split, ...). It returns the total sum (the reduction of the
// whole input), which callers very often need alongside the scan.
// dst may alias src.
func ExclusiveSumInts(dst, src []int) (total int) {
	checkLen("ExclusiveSumInts", len(dst), len(src))
	acc := 0
	for i, v := range src {
		dst[i] = acc
		acc += v
	}
	return acc
}

// ExclusiveMaxInts is a hand-specialized exclusive max-scan over int with
// the given identity (a value ≤ every input). It returns the maximum of
// the whole input (or id if empty). dst may alias src.
func ExclusiveMaxInts(dst, src []int, id int) (max int) {
	checkLen("ExclusiveMaxInts", len(dst), len(src))
	acc := id
	for i, v := range src {
		dst[i] = acc
		if v > acc {
			acc = v
		}
	}
	return acc
}
