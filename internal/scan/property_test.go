package scan

import (
	"testing"
	"testing/quick"
)

// Property: exclusive scan shifted by one element equals inclusive scan,
// i.e. inclusive[i] == op(exclusive[i], src[i]).
func TestPropertyExclusiveInclusiveShift(t *testing.T) {
	prop := func(a []int) bool {
		exc := make([]int, len(a))
		inc := make([]int, len(a))
		Exclusive(Add[int]{}, exc, a)
		Inclusive(Add[int]{}, inc, a)
		for i := range a {
			if inc[i] != exc[i]+a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: the last inclusive element equals the reduction.
func TestPropertyInclusiveLastIsReduce(t *testing.T) {
	prop := func(a []int) bool {
		if len(a) == 0 {
			return true
		}
		inc := make([]int, len(a))
		Inclusive(Add[int]{}, inc, a)
		return inc[len(a)-1] == Reduce(Add[int]{}, a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: a +-scan is inverted by adjacent differences:
// src[i] == inclusive[i] - exclusive[i] and
// src[i] == exclusive[i+1] - exclusive[i].
func TestPropertySumScanDifferences(t *testing.T) {
	prop := func(a []int) bool {
		exc := make([]int, len(a))
		Exclusive(Add[int]{}, exc, a)
		for i := 0; i+1 < len(a); i++ {
			if exc[i+1]-exc[i] != a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: max-scan output is nondecreasing, and each prefix maximum
// bounds every earlier element.
func TestPropertyMaxScanMonotone(t *testing.T) {
	prop := func(a []int) bool {
		inc := make([]int, len(a))
		Inclusive(MaxIntOp, inc, a)
		for i := 1; i < len(a); i++ {
			if inc[i] < inc[i-1] {
				return false
			}
			if inc[i] < a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: forward scan of the reversed input, reversed again, equals
// the backward scan (the paper's §3.4 backward-scan construction).
func TestPropertyBackwardIsReversedForward(t *testing.T) {
	prop := func(a []int) bool {
		direct := make([]int, len(a))
		ExclusiveBackward(MaxIntOp, direct, a)
		via := make([]int, len(a))
		BackwardViaReverse(MaxIntOp, via, a)
		for i := range a {
			if direct[i] != via[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: segmented scan of independently generated segments equals the
// concatenation of unsegmented scans of each segment.
func TestPropertySegmentedIsPerSegmentScan(t *testing.T) {
	prop := func(segs [][]int) bool {
		var all []int
		lengths := make([]int, 0, len(segs))
		for _, s := range segs {
			all = append(all, s...)
			lengths = append(lengths, len(s))
		}
		flags := SegmentHeads(lengths)
		got := make([]int, len(all))
		SegExclusive(Add[int]{}, got, all, flags)
		var want []int
		for _, s := range segs {
			part := make([]int, len(s))
			Exclusive(Add[int]{}, part, s)
			want = append(want, part...)
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: the parallel kernels agree with the serial ones on arbitrary
// inputs (quick drives small sizes; parallel_test.go drives large ones).
func TestPropertyParallelAgreesSerial(t *testing.T) {
	prop := func(a []int, p uint8) bool {
		want := make([]int, len(a))
		Exclusive(Add[int]{}, want, a)
		got := make([]int, len(a))
		ExclusiveParallel(Add[int]{}, got, a, int(p%8)+1)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: the two-primitive segmented simulations agree with the direct
// kernels on arbitrary non-negative inputs.
func TestPropertyViaPrimitivesAgree(t *testing.T) {
	prop := func(raw []uint16, rawFlags []bool) bool {
		n := len(raw)
		if len(rawFlags) < n {
			n = len(rawFlags)
		}
		a := make([]int, n)
		for i := 0; i < n; i++ {
			a[i] = int(raw[i])
		}
		flags := rawFlags[:n]
		wantMax := make([]int, n)
		SegExclusive(Max[int]{Id: 0}, wantMax, a, flags)
		gotMax := make([]int, n)
		SegMaxViaPrimitives(gotMax, a, flags)
		wantSum := make([]int, n)
		SegExclusive(Add[int]{}, wantSum, a, flags)
		gotSum := make([]int, n)
		SegSumViaPrimitives(gotSum, a, flags)
		for i := 0; i < n; i++ {
			if gotMax[i] != wantMax[i] || gotSum[i] != wantSum[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
