package scan

import (
	"math"
	"reflect"
	"testing"
)

// Paper Figure 4 inputs.
var (
	fig4A  = []int{5, 1, 3, 4, 3, 9, 2, 6}
	fig4Sb = []bool{true, false, true, false, false, false, true, false}
)

func TestSegExclusiveSumFig4(t *testing.T) {
	// seg-+-scan(A, Sb) = [0 5 0 3 7 10 0 2].
	got := make([]int, len(fig4A))
	SegExclusive(Add[int]{}, got, fig4A, fig4Sb)
	want := []int{0, 5, 0, 3, 7, 10, 0, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("seg-+-scan = %v, want %v", got, want)
	}
}

func TestSegExclusiveMaxFig4(t *testing.T) {
	// seg-max-scan(A, Sb) = [0 5 0 3 4 4 0 2] (identity shown as 0 in the
	// paper because the values are non-negative; we scan with identity 0
	// to match).
	got := make([]int, len(fig4A))
	SegExclusive(Max[int]{Id: 0}, got, fig4A, fig4Sb)
	want := []int{0, 5, 0, 3, 4, 4, 0, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("seg-max-scan = %v, want %v", got, want)
	}
}

func TestSegExclusiveImplicitFirstSegment(t *testing.T) {
	// Position 0 starts a segment even when flags[0] is false.
	a := []int{1, 2, 3, 4}
	flags := []bool{false, false, true, false}
	got := make([]int, len(a))
	SegExclusive(Add[int]{}, got, a, flags)
	want := []int{0, 1, 0, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SegExclusive = %v, want %v", got, want)
	}
}

func TestSegInclusive(t *testing.T) {
	a := []int{1, 2, 3, 4, 5}
	flags := []bool{true, false, true, false, false}
	got := make([]int, len(a))
	SegInclusive(Add[int]{}, got, a, flags)
	want := []int{1, 3, 3, 7, 12}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SegInclusive = %v, want %v", got, want)
	}
}

func TestSegExclusiveBackward(t *testing.T) {
	a := []int{1, 2, 3, 4, 5}
	flags := []bool{true, false, true, false, false}
	got := make([]int, len(a))
	SegExclusiveBackward(Add[int]{}, got, a, flags)
	// Segment [1 2]: backward exclusive = [2 0]; segment [3 4 5] = [9 5 0].
	want := []int{2, 0, 9, 5, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SegExclusiveBackward = %v, want %v", got, want)
	}
}

func TestSegInclusiveBackward(t *testing.T) {
	a := []int{1, 2, 3, 4, 5}
	flags := []bool{true, false, true, false, false}
	got := make([]int, len(a))
	SegInclusiveBackward(Add[int]{}, got, a, flags)
	want := []int{3, 2, 12, 9, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SegInclusiveBackward = %v, want %v", got, want)
	}
}

func TestSegScanSingletonSegments(t *testing.T) {
	// Every element its own segment: exclusive scan is all identities.
	a := []int{4, 5, 6}
	flags := []bool{true, true, true}
	got := make([]int, len(a))
	SegExclusive(Add[int]{}, got, a, flags)
	if want := []int{0, 0, 0}; !reflect.DeepEqual(got, want) {
		t.Errorf("singleton segments = %v, want %v", got, want)
	}
	SegInclusive(Add[int]{}, got, a, flags)
	if !reflect.DeepEqual(got, a) {
		t.Errorf("singleton inclusive = %v, want %v", got, a)
	}
}

func TestSegScanNoFlags(t *testing.T) {
	// No flags at all: segmented scan equals the unsegmented scan.
	a := []int{3, 1, 4, 1, 5, 9}
	flags := make([]bool, len(a))
	got := make([]int, len(a))
	want := make([]int, len(a))
	SegExclusive(Add[int]{}, got, a, flags)
	Exclusive(Add[int]{}, want, a)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("no-flag segmented = %v, want unsegmented %v", got, want)
	}
}

func TestSegMaxFloat(t *testing.T) {
	a := []float64{1.5, -2, 3, 0.5}
	flags := []bool{true, false, true, false}
	got := make([]float64, len(a))
	SegExclusive(MaxFloat64Op, got, a, flags)
	want := []float64{math.Inf(-1), 1.5, math.Inf(-1), 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SegExclusive(max, float) = %v, want %v", got, want)
	}
}

func TestSegmentHeads(t *testing.T) {
	got := SegmentHeads([]int{2, 0, 3, 1})
	want := []bool{true, false, true, false, false, true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SegmentHeads = %v, want %v", got, want)
	}
	if got := SegmentHeads(nil); len(got) != 0 {
		t.Errorf("SegmentHeads(nil) = %v, want empty", got)
	}
}

func TestSegOpAssociativity(t *testing.T) {
	// The lifted segmented operator must be associative for the parallel
	// kernel to be correct; check all 2^3 flag combinations of a triple.
	op := segOp[int, Add[int]]{Add[int]{}}
	vals := []int{3, 5, 7}
	for m := 0; m < 8; m++ {
		var ps [3]segPair[int]
		for i := 0; i < 3; i++ {
			ps[i] = segPair[int]{v: vals[i], crossed: m&(1<<i) != 0}
		}
		l := op.Combine(op.Combine(ps[0], ps[1]), ps[2])
		r := op.Combine(ps[0], op.Combine(ps[1], ps[2]))
		if l != r {
			t.Errorf("segOp not associative for mask %b: %+v vs %+v", m, l, r)
		}
	}
}
