package scan

import (
	"math"
	"math/rand"
	"testing"
)

// flattenViews builds the flat src/flags model the view kernels replace:
// each non-empty view becomes one segment (head flag at its first slot),
// and a seeded view gets a phantom slot holding its carry — at the head
// for forward scans, appended at the tail for backward scans. offsets[i]
// is the flat index of view i's first PAYLOAD slot (-1 for empty views).
func flattenViews(views []View[int64], backward bool) (src []int64, flags []bool, offsets []int) {
	offsets = make([]int, len(views))
	for i := range views {
		vw := &views[i]
		if len(vw.Src) == 0 {
			offsets[i] = -1
			continue
		}
		head := len(src)
		if vw.Seeded && !backward {
			src = append(src, vw.Carry)
		}
		offsets[i] = len(src)
		src = append(src, vw.Src...)
		if vw.Seeded && backward {
			src = append(src, vw.Carry)
		}
		for len(flags) < len(src) {
			flags = append(flags, false)
		}
		flags[head] = true
	}
	return src, flags, offsets
}

// runViewsVariant dispatches variant v (0=ex fwd, 1=in fwd, 2=ex bwd,
// 3=in bwd) to the matching view kernel.
func runViewsVariant(v int, op Op[int64], views []View[int64], p int) {
	switch v {
	case 0:
		SegScanViewsExclusive(op, views, p)
	case 1:
		SegScanViewsInclusive(op, views, p)
	case 2:
		SegScanViewsExclusiveBackward(op, views, p)
	default:
		SegScanViewsInclusiveBackward(op, views, p)
	}
}

// runFlatVariant runs the flat reference kernel for variant v.
func runFlatVariant(v int, op Op[int64], dst, src []int64, flags []bool, p int) {
	switch v {
	case 0:
		SegExclusiveParallel(op, dst, src, flags, p)
	case 1:
		SegInclusiveParallel(op, dst, src, flags, p)
	case 2:
		SegExclusiveBackwardParallel(op, dst, src, flags, p)
	default:
		SegInclusiveBackwardParallel(op, dst, src, flags, p)
	}
}

var viewTestOps = []struct {
	name string
	op   Op[int64]
}{
	{"add", Add[int64]{}},
	{"mul", Mul[int64]{}},
	{"max", Max[int64]{Id: math.MinInt64}},
	{"min", Min[int64]{Id: math.MaxInt64}},
}

// checkViewsMatchFlattened runs every variant × op over the layout and
// compares against the flat reference. The views' Src buffers are
// copied fresh per run (the kernels scan in place).
func checkViewsMatchFlattened(t *testing.T, layout []View[int64], p int) {
	t.Helper()
	for v := 0; v < 4; v++ {
		backward := v >= 2
		src, flags, offsets := flattenViews(layout, backward)
		for _, tc := range viewTestOps {
			want := make([]int64, len(src))
			runFlatVariant(v, tc.op, want, src, flags, p)

			views := make([]View[int64], len(layout))
			for i := range layout {
				buf := append([]int64(nil), layout[i].Src...)
				views[i] = View[int64]{Dst: buf, Src: buf, Carry: layout[i].Carry, Seeded: layout[i].Seeded}
			}
			runViewsVariant(v, tc.op, views, p)

			for i := range views {
				if offsets[i] < 0 {
					continue
				}
				for k, got := range views[i].Dst {
					if w := want[offsets[i]+k]; got != w {
						t.Fatalf("variant %d op %s p %d view %d elem %d: got %d want %d",
							v, tc.name, p, i, k, got, w)
					}
				}
			}
		}
	}
}

// randLayout builds nviews random views (lengths up to maxLen, some
// empty, some seeded) from rng.
func randLayout(rng *rand.Rand, nviews, maxLen int) []View[int64] {
	views := make([]View[int64], nviews)
	for i := range views {
		n := rng.Intn(maxLen + 1)
		if rng.Intn(8) == 0 {
			n = 0
		}
		data := make([]int64, n)
		for k := range data {
			data[k] = int64(rng.Intn(7)) - 3
		}
		views[i] = View[int64]{
			Dst:    data,
			Src:    data,
			Carry:  int64(rng.Intn(9)) - 4,
			Seeded: rng.Intn(3) == 0,
		}
	}
	return views
}

func TestSegScanViewsSerialMatchesFlattened(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	layouts := [][]View[int64]{
		{},
		{{Src: []int64{}, Dst: []int64{}}},
		{{Src: []int64{7}, Dst: []int64{7}}},
		{{Src: []int64{5}, Dst: []int64{5}, Carry: 3, Seeded: true}},
		randLayout(rng, 1, 16),
		randLayout(rng, 5, 9),
		randLayout(rng, 17, 5),
	}
	for _, l := range layouts {
		checkViewsMatchFlattened(t, l, 1)
	}
}

func TestSegScanViewsParallelMatchesFlattened(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, p := range []int{2, 3, 7, 16} {
		// Skewed: one huge view among many small ones, so blocks cut
		// mid-view; total comfortably above parallelThreshold.
		big := randLayout(rng, 1, 3*parallelThreshold)
		small := randLayout(rng, 40, 64)
		layout := append(append(append([]View[int64]{}, small[:20]...), big...), small[20:]...)
		checkViewsMatchFlattened(t, layout, p)

		// Many same-sized views whose edges rarely align with blocks.
		checkViewsMatchFlattened(t, randLayout(rng, 64, 2*parallelThreshold/64), p)
	}
}

// TestSegScanViewsSeparateDst pins that Dst need not alias Src.
func TestSegScanViewsSeparateDst(t *testing.T) {
	src := []int64{1, 2, 3, 4}
	dst := make([]int64, 4)
	views := []View[int64]{{Dst: dst, Src: src, Carry: 10, Seeded: true}}
	SegScanViewsExclusive(Add[int64]{}, views, 1)
	want := []int64{10, 11, 13, 16}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
	for i, v := range []int64{1, 2, 3, 4} {
		if src[i] != v {
			t.Fatalf("src mutated at %d: %d", i, src[i])
		}
	}
}

// FuzzViewKernelsMatchFlattened drives random view layouts, seeds, and
// worker counts through all four view kernels and cross-checks each
// against flatten + the existing segmented parallel kernels.
func FuzzViewKernelsMatchFlattened(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(2), uint8(16))
	f.Add(int64(2), uint8(64), uint8(7), uint8(200))
	f.Add(int64(3), uint8(1), uint8(1), uint8(0))
	f.Add(int64(99), uint8(130), uint8(3), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, nviews, workers, maxLen uint8) {
		rng := rand.New(rand.NewSource(seed))
		nv := int(nviews)%130 + 1
		p := int(workers)%16 + 1
		ml := int(maxLen)
		if ml == 0 {
			ml = 1
		}
		// Occasionally push the total past parallelThreshold so the
		// blocked path runs even for modest nviews.
		if rng.Intn(3) == 0 {
			ml = parallelThreshold/nv + 64
		}
		checkViewsMatchFlattened(t, randLayout(rng, nv, ml), p)
	})
}
