package scan

// Segmented scans (paper §2.3, Figure 4) restart at the beginning of each
// segment. Segments are described by a flag vector the same length as the
// data: flags[i] == true marks element i as the first element of a
// segment. Position 0 always begins a segment whether or not flags[0] is
// set.

// SegExclusive computes the segmented exclusive scan of src into dst:
// within each segment, dst[i] is the combination of the segment's
// elements strictly before i, and the first element of each segment gets
// the identity. dst may alias src; flags is read-only.
func SegExclusive[T any, O Op[T]](op O, dst, src []T, flags []bool) {
	n := len(src)
	checkLen("SegExclusive", len(dst), n)
	checkLen("SegExclusive flags", len(flags), n)
	acc := op.Identity()
	for i, v := range src {
		if flags[i] {
			acc = op.Identity()
		}
		dst[i] = acc
		acc = op.Combine(acc, v)
	}
}

// SegInclusive computes the segmented inclusive scan of src into dst.
// dst may alias src.
func SegInclusive[T any, O Op[T]](op O, dst, src []T, flags []bool) {
	n := len(src)
	checkLen("SegInclusive", len(dst), n)
	checkLen("SegInclusive flags", len(flags), n)
	acc := op.Identity()
	for i, v := range src {
		if flags[i] {
			acc = op.Identity()
		}
		acc = op.Combine(acc, v)
		dst[i] = acc
	}
}

// SegExclusiveBackward computes the backward segmented exclusive scan:
// within each segment, dst[i] is the combination of the segment's
// elements strictly after i, and the last element of each segment gets
// the identity. dst may alias src.
func SegExclusiveBackward[T any, O Op[T]](op O, dst, src []T, flags []bool) {
	n := len(src)
	checkLen("SegExclusiveBackward", len(dst), n)
	checkLen("SegExclusiveBackward flags", len(flags), n)
	acc := op.Identity()
	for i := n - 1; i >= 0; i-- {
		v := src[i]
		dst[i] = acc
		acc = op.Combine(v, acc)
		if flags[i] {
			// i begins a segment, so i-1 (if any) ends the previous one.
			acc = op.Identity()
		}
	}
}

// SegInclusiveBackward computes the backward segmented inclusive scan.
// dst may alias src.
func SegInclusiveBackward[T any, O Op[T]](op O, dst, src []T, flags []bool) {
	n := len(src)
	checkLen("SegInclusiveBackward", len(dst), n)
	checkLen("SegInclusiveBackward flags", len(flags), n)
	acc := op.Identity()
	for i := n - 1; i >= 0; i-- {
		acc = op.Combine(src[i], acc)
		dst[i] = acc
		if flags[i] {
			// i begins a segment, so i-1 (if any) ends the previous one.
			acc = op.Identity()
		}
	}
}

// segPair is the element of the standard segmented-scan monoid: the value
// accumulated since the last segment boundary, plus whether a boundary
// has been seen.
type segPair[T any] struct {
	v       T
	crossed bool
}

// segOp lifts an Op to the segmented-pair monoid. This construction makes
// the segmented scan itself an ordinary (associative) scan, which is what
// lets the blocked parallel kernel handle segments that span block
// boundaries.
type segOp[T any, O Op[T]] struct{ op O }

func (s segOp[T, O]) Identity() segPair[T] {
	return segPair[T]{v: s.op.Identity()}
}

func (s segOp[T, O]) Combine(a, b segPair[T]) segPair[T] {
	if b.crossed {
		return b
	}
	return segPair[T]{v: s.op.Combine(a.v, b.v), crossed: a.crossed}
}

// SegExclusiveParallel computes the same result as SegExclusive using p
// worker goroutines (p <= 0 means GOMAXPROCS). dst may alias src.
func SegExclusiveParallel[T any, O Op[T]](op O, dst, src []T, flags []bool, p int) {
	n := len(src)
	checkLen("SegExclusiveParallel", len(dst), n)
	checkLen("SegExclusiveParallel flags", len(flags), n)
	p = Workers(p)
	if p <= 1 || n < parallelThreshold {
		SegExclusive(op, dst, src, flags)
		return
	}
	if p > n {
		p = n
	}
	sop := segOp[T, O]{op}
	carries := make([]segPair[T], p)
	blocks(n, p, func(b, lo, hi int) {
		acc := sop.Identity()
		for i := lo; i < hi; i++ {
			acc = sop.Combine(acc, segPair[T]{v: src[i], crossed: flags[i]})
		}
		carries[b] = acc
	})
	Exclusive(sop, carries, carries)
	blocks(n, p, func(b, lo, hi int) {
		acc := carries[b].v
		for i := lo; i < hi; i++ {
			if flags[i] {
				acc = op.Identity()
			}
			v := src[i]
			dst[i] = acc
			acc = op.Combine(acc, v)
		}
	})
}

// SegInclusiveParallel computes the same result as SegInclusive using p
// worker goroutines. dst may alias src.
func SegInclusiveParallel[T any, O Op[T]](op O, dst, src []T, flags []bool, p int) {
	n := len(src)
	checkLen("SegInclusiveParallel", len(dst), n)
	checkLen("SegInclusiveParallel flags", len(flags), n)
	p = Workers(p)
	if p <= 1 || n < parallelThreshold {
		SegInclusive(op, dst, src, flags)
		return
	}
	if p > n {
		p = n
	}
	sop := segOp[T, O]{op}
	carries := make([]segPair[T], p)
	blocks(n, p, func(b, lo, hi int) {
		acc := sop.Identity()
		for i := lo; i < hi; i++ {
			acc = sop.Combine(acc, segPair[T]{v: src[i], crossed: flags[i]})
		}
		carries[b] = acc
	})
	Exclusive(sop, carries, carries)
	blocks(n, p, func(b, lo, hi int) {
		acc := carries[b].v
		for i := lo; i < hi; i++ {
			if flags[i] {
				acc = op.Identity()
			}
			acc = op.Combine(acc, src[i])
			dst[i] = acc
		}
	})
}

// SegExclusiveBackwardParallel computes the same result as
// SegExclusiveBackward using p worker goroutines (p <= 0 means
// GOMAXPROCS). dst may alias src.
//
// The block-carry monoid mirrors segOp: each block summarizes, for a
// reader whose accumulation is still open at the block's LEFT edge, the
// combination of its elements up to (but excluding) its first segment
// head, plus whether it contains a head at all.
func SegExclusiveBackwardParallel[T any, O Op[T]](op O, dst, src []T, flags []bool, p int) {
	n := len(src)
	checkLen("SegExclusiveBackwardParallel", len(dst), n)
	checkLen("SegExclusiveBackwardParallel flags", len(flags), n)
	p = Workers(p)
	if p <= 1 || n < parallelThreshold {
		SegExclusiveBackward(op, dst, src, flags)
		return
	}
	if p > n {
		p = n
	}
	carries := segBackwardCarries(op, src, flags, p)
	blocks(n, p, func(b, lo, hi int) {
		acc := carries[b].v
		for i := hi - 1; i >= lo; i-- {
			v := src[i]
			dst[i] = acc
			acc = op.Combine(v, acc)
			if flags[i] {
				acc = op.Identity()
			}
		}
	})
}

// SegInclusiveBackwardParallel computes the same result as
// SegInclusiveBackward using p worker goroutines. dst may alias src.
func SegInclusiveBackwardParallel[T any, O Op[T]](op O, dst, src []T, flags []bool, p int) {
	n := len(src)
	checkLen("SegInclusiveBackwardParallel", len(dst), n)
	checkLen("SegInclusiveBackwardParallel flags", len(flags), n)
	p = Workers(p)
	if p <= 1 || n < parallelThreshold {
		SegInclusiveBackward(op, dst, src, flags)
		return
	}
	if p > n {
		p = n
	}
	carries := segBackwardCarries(op, src, flags, p)
	blocks(n, p, func(b, lo, hi int) {
		acc := carries[b].v
		for i := hi - 1; i >= lo; i-- {
			acc = op.Combine(src[i], acc)
			dst[i] = acc
			if flags[i] {
				acc = op.Identity()
			}
		}
	})
}

// segBackwardCarries runs phase 1+2 of the backward segmented parallel
// scans: per-block backward summaries, then a serial backward exclusive
// scan of the p summaries under the backward segment monoid, leaving
// carries[b] = the open accumulation each block should be seeded with at
// its right edge.
func segBackwardCarries[T any, O Op[T]](op O, src []T, flags []bool, p int) []segPair[T] {
	n := len(src)
	carries := make([]segPair[T], p)
	blocks(n, p, func(b, lo, hi int) {
		acc := op.Identity()
		crossed := false
		for i := hi - 1; i >= lo; i-- {
			acc = op.Combine(src[i], acc)
			if flags[i] {
				crossed = true
				acc = op.Identity()
			}
		}
		carries[b] = segPair[T]{v: acc, crossed: crossed}
	})
	// Backward exclusive scan of the block summaries. The combine is the
	// mirror of segOp.Combine: a head anywhere in the left operand hides
	// everything to its right.
	acc := segPair[T]{v: op.Identity()}
	for b := p - 1; b >= 0; b-- {
		s := carries[b]
		carries[b] = acc
		if s.crossed {
			acc = segPair[T]{v: s.v, crossed: true}
		} else {
			acc = segPair[T]{v: op.Combine(s.v, acc.v), crossed: acc.crossed}
		}
	}
	return carries
}

// copyPair is the element of the copy monoid: "the most recent tagged
// value wins". It makes the paper's copy and segmented-copy operations
// (§2.2) ordinary scans: tag the first element (or every segment head)
// and take the inclusive scan.
type copyPair[T any] struct {
	set bool
	v   T
}

// copyOp is the associative "last tagged wins" operator (operand order:
// a before b). Forward copies use it so each element picks up the most
// recent head.
type copyOp[T any] struct{}

func (copyOp[T]) Identity() copyPair[T] { return copyPair[T]{} }

func (copyOp[T]) Combine(a, b copyPair[T]) copyPair[T] {
	if b.set {
		return b
	}
	return a
}

// copyFirstOp is the mirror image, "first tagged wins": backward copies
// use it so each element picks up the *nearest following* tagged value
// (its segment's tail) rather than the last one in the vector.
type copyFirstOp[T any] struct{}

func (copyFirstOp[T]) Identity() copyPair[T] { return copyPair[T]{} }

func (copyFirstOp[T]) Combine(a, b copyPair[T]) copyPair[T] {
	if a.set {
		return a
	}
	return b
}

// SegCopyParallel copies each segment's first element across the segment
// (inclusive; the head keeps its value) using p worker goroutines: the
// inclusive scan of the copy monoid over head-tagged elements. dst may
// alias src.
func SegCopyParallel[T any](dst, src []T, flags []bool, p int) {
	n := len(src)
	checkLen("SegCopyParallel", len(dst), n)
	checkLen("SegCopyParallel flags", len(flags), n)
	pairs := make([]copyPair[T], n)
	for i := range pairs {
		pairs[i] = copyPair[T]{set: flags[i] || i == 0, v: src[i]}
	}
	InclusiveParallel(copyOp[T]{}, pairs, pairs, p)
	for i := range dst {
		dst[i] = pairs[i].v
	}
}

// SegBackCopyParallel copies each segment's *last* element across the
// segment using p worker goroutines: the backward inclusive copy-monoid
// scan over tail-tagged elements. dst may alias src.
func SegBackCopyParallel[T any](dst, src []T, flags []bool, p int) {
	n := len(src)
	checkLen("SegBackCopyParallel", len(dst), n)
	checkLen("SegBackCopyParallel flags", len(flags), n)
	pairs := make([]copyPair[T], n)
	for i := range pairs {
		isLast := i == n-1 || flags[i+1]
		pairs[i] = copyPair[T]{set: isLast, v: src[i]}
	}
	InclusiveBackwardParallel(copyFirstOp[T]{}, pairs, pairs, p)
	for i := range dst {
		dst[i] = pairs[i].v
	}
}

// InclusiveBackwardParallel computes the backward inclusive scan with p
// worker goroutines. dst may alias src. The operator need not be
// commutative; block results combine in operand order.
func InclusiveBackwardParallel[T any, O Op[T]](op O, dst, src []T, p int) {
	n := len(src)
	checkLen("InclusiveBackwardParallel", len(dst), n)
	p = Workers(p)
	if p <= 1 || n < parallelThreshold {
		InclusiveBackward(op, dst, src)
		return
	}
	if p > n {
		p = n
	}
	sums := make([]T, p)
	blocks(n, p, func(b, lo, hi int) {
		acc := op.Identity()
		for i := hi - 1; i >= lo; i-- {
			acc = op.Combine(src[i], acc)
		}
		sums[b] = acc
	})
	acc := op.Identity()
	for b := p - 1; b >= 0; b-- {
		s := sums[b]
		sums[b] = acc
		acc = op.Combine(s, acc)
	}
	blocks(n, p, func(b, lo, hi int) {
		acc := sums[b]
		for i := hi - 1; i >= lo; i-- {
			acc = op.Combine(src[i], acc)
			dst[i] = acc
		}
	})
}

// SegmentHeads converts a vector of segment lengths into a flag vector of
// total length sum(lengths) with true at the first element of each
// segment. Zero-length segments contribute no flags (they have no
// elements). It is a convenience for constructing segmented-scan inputs.
func SegmentHeads(lengths []int) []bool {
	total := 0
	for _, l := range lengths {
		total += l
	}
	flags := make([]bool, total)
	pos := 0
	for _, l := range lengths {
		if l > 0 {
			flags[pos] = true
			pos += l
		}
	}
	return flags
}
