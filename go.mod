module scans

go 1.22
