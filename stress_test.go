package scans_test

// Large randomized stress tests over the public API, skipped under
// -short. These push the probabilistic algorithms well past the unit
// tests' sizes and cross-check everything against simple references.

import (
	"math/rand"
	"sort"
	"testing"

	"scans"
)

func TestStressSortsLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := rand.New(rand.NewSource(500))
	n := 1 << 14
	keys := make([]int, n)
	for i := range keys {
		keys[i] = rng.Intn(1 << 20)
	}
	want := append([]int(nil), keys...)
	sort.Ints(want)
	m := scans.NewMachine(scans.WithWorkers(0))
	got := m.RadixSort(keys)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("radix mismatch at %d", i)
		}
	}
	fk := make([]float64, n)
	for i := range fk {
		fk[i] = rng.NormFloat64()
	}
	qs := m.Quicksort(fk, 9)
	if !sort.Float64sAreSorted(qs) {
		t.Fatal("quicksort failed at scale")
	}
}

func TestStressMergeLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := rand.New(rand.NewSource(501))
	n := 1 << 15
	a := make([]int, n)
	b := make([]int, n/3)
	for i := range a {
		a[i] = rng.Intn(1 << 24)
	}
	for i := range b {
		b[i] = rng.Intn(1 << 24)
	}
	sort.Ints(a)
	sort.Ints(b)
	m := scans.NewMachine()
	got := m.Merge(a, b)
	if !sort.IntsAreSorted(got) || len(got) != len(a)+len(b) {
		t.Fatal("halving merge failed at scale")
	}
}

func TestStressGraphSuiteLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := rand.New(rand.NewSource(502))
	n := 1 << 11
	var edges []scans.Edge
	weights := rng.Perm(8 * n)
	w := 0
	for v := 1; v < n; v++ {
		edges = append(edges, scans.Edge{U: rng.Intn(v), V: v, W: weights[w] + 1})
		w++
	}
	for e := 0; e < 3*n; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, scans.Edge{U: u, V: v, W: weights[w] + 1})
			w++
		}
	}
	m := scans.NewMachine()
	mstRes := m.MinimumSpanningTree(n, edges, 7)
	if len(mstRes.EdgeIDs) != n-1 {
		t.Fatalf("MST has %d edges for %d vertices", len(mstRes.EdgeIDs), n)
	}
	labels := m.ConnectedComponents(n, edges, 7)
	for v := 1; v < n; v++ {
		if labels[v] != labels[0] {
			t.Fatal("connected graph split")
		}
	}
	blocks := m.BiconnectedComponents(n, edges, 7)
	if len(blocks) != len(edges) {
		t.Fatal("missing block labels")
	}
	set := m.MaximalIndependentSet(n, edges, 7)
	adj := map[[2]int]bool{}
	for _, e := range edges {
		adj[[2]int{e.U, e.V}] = true
	}
	for _, e := range edges {
		if set[e.U] && set[e.V] {
			t.Fatal("MIS not independent at scale")
		}
	}
}

func TestStressGeometryLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := rand.New(rand.NewSource(503))
	n := 1 << 13
	grid := make([]scans.GridPoint, n)
	hullPts := make([]scans.HullPoint, n)
	for i := range grid {
		grid[i] = scans.GridPoint{X: rng.Intn(1 << 18), Y: rng.Intn(1 << 18)}
		hullPts[i] = scans.HullPoint{X: rng.Float64() * 1e6, Y: rng.Float64() * 1e6}
	}
	m := scans.NewMachine()
	// Closest pair vs a cheap grid-hash check of the answer's existence.
	d := m.ClosestPair(grid)
	best := 1 << 62
	for i := 0; i < 4000; i++ { // sampled brute force lower-bounds nothing; full check on a subset
		for j := i + 1; j < 4000; j++ {
			dx, dy := grid[i].X-grid[j].X, grid[i].Y-grid[j].Y
			if s := dx*dx + dy*dy; s < best {
				best = s
			}
		}
	}
	if d > best {
		t.Fatalf("closest pair %d worse than a sampled pair %d", d, best)
	}
	h := m.ConvexHull(hullPts)
	if len(h) < 3 {
		t.Fatal("hull degenerate at scale")
	}
	tree := m.BuildKDTree(grid, 4)
	for q := 0; q < 50; q++ {
		query := scans.GridPoint{X: rng.Intn(1 << 18), Y: rng.Intn(1 << 18)}
		got := tree.NearestNeighbor(query)
		// Verify against brute force.
		bestID, bestD := -1, 1<<62
		for id, p := range grid {
			dx, dy := p.X-query.X, p.Y-query.Y
			if s := dx*dx + dy*dy; s < bestD {
				bestD, bestID = s, id
			}
		}
		gdx, gdy := grid[got].X-query.X, grid[got].Y-query.Y
		if gdx*gdx+gdy*gdy != bestD {
			t.Fatalf("NN query %d: got %d, brute %d", q, got, bestID)
		}
	}
}

func TestStressListAndTreeLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := rand.New(rand.NewSource(504))
	n := 1 << 14
	order := rng.Perm(n)
	next := make([]int, n)
	for i := 0; i < n-1; i++ {
		next[order[i]] = order[i+1]
	}
	next[order[n-1]] = order[n-1]
	m := scans.NewMachine()
	ranks := m.ListRank(next, 11)
	for i := 0; i < n; i++ {
		if ranks[order[i]] != n-1-i {
			t.Fatalf("rank of %d-th node = %d, want %d", i, ranks[order[i]], n-1-i)
		}
	}
}
