// Command scanload is a closed-loop load generator for the batched
// scan service: N client goroutines each issue small scans back to
// back and the tool reports end-to-end throughput plus the server's
// fusion statistics.
//
// With no -addr it benchmarks the in-process server twice — once with
// batching enabled (fused) and once with MaxBatchRequests=1 (unfused,
// every request is its own kernel pass) — and prints the speedup, the
// number EXPERIMENTS.md tracks. With -addr it drives a running scansd
// over TCP, one connection per client.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"scans/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "", "scansd address; empty = benchmark the in-process server fused vs unfused")
		clients  = flag.Int("clients", 32, "concurrent closed-loop clients")
		requests = flag.Int("requests", 10000, "total requests across all clients")
		n        = flag.Int("n", 256, "elements per scan request")
		op       = flag.String("op", "sum", "scan operator: sum, max, min, mul")
		kind     = flag.String("kind", "exclusive", "exclusive or inclusive")
		dir      = flag.String("dir", "forward", "forward or backward")
		maxWait  = flag.Duration("max-wait", 100*time.Microsecond, "batching window (in-process mode)")
	)
	flag.Parse()

	spec, err := serve.ParseSpec(*op, *kind, *dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scanload:", err)
		os.Exit(1)
	}

	if *addr != "" {
		elapsed, err := driveRemote(*addr, *clients, *requests, *n, *op, *kind, *dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scanload:", err)
			os.Exit(1)
		}
		report("remote "+*addr, *requests, *n, elapsed)
		return
	}

	fused := serve.Config{MaxWait: *maxWait, QueueLimit: 1 << 15}
	unfused := fused
	unfused.MaxBatchRequests = 1

	fmt.Printf("in-process: %d clients × %d-element %s scans, %d requests total\n",
		*clients, *n, spec, *requests)
	tFused, stFused := driveInProcess(fused, spec, *clients, *requests, *n)
	report("fused", *requests, *n, tFused)
	fmt.Println("  ", stFused)
	tUnfused, stUnfused := driveInProcess(unfused, spec, *clients, *requests, *n)
	report("unfused", *requests, *n, tUnfused)
	fmt.Println("  ", stUnfused)
	fmt.Printf("fusion speedup: %.2fx\n", float64(tUnfused)/float64(tFused))
}

// driveInProcess runs one closed-loop phase against a fresh in-process
// server and returns the elapsed time and the server's final stats.
func driveInProcess(cfg serve.Config, spec serve.Spec, clients, requests, n int) (time.Duration, serve.Stats) {
	srv := serve.New(cfg)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			data := randomData(int64(c), n)
			for i := 0; i < requests/clients; i++ {
				if _, err := srv.Submit(spec, data); err != nil {
					// Overload in a closed loop just means retry.
					i--
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	srv.Close()
	return elapsed, srv.Stats()
}

// driveRemote runs the closed loop over TCP, one connection per client.
func driveRemote(addr string, clients, requests, n int, op, kind, dir string) (time.Duration, error) {
	conns := make([]*serve.Client, clients)
	for i := range conns {
		c, err := serve.Dial(addr)
		if err != nil {
			return 0, err
		}
		defer c.Close()
		conns[i] = c
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			data := randomData(int64(c), n)
			for i := 0; i < requests/clients; i++ {
				if _, err := conns[c].Scan(op, kind, dir, data); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(c)
	}
	wg.Wait()
	return time.Since(start), firstErr
}

func randomData(seed int64, n int) []int64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(rng.Intn(100))
	}
	return data
}

func report(label string, requests, n int, elapsed time.Duration) {
	rps := float64(requests) / elapsed.Seconds()
	fmt.Printf("%-8s %8d req in %10v  →  %10.0f req/s  %12.0f elems/s\n",
		label, requests, elapsed.Round(time.Millisecond), rps, rps*float64(n))
}
