// Command scanload is a closed-loop load generator for the batched
// scan service: N client goroutines each issue small scans back to
// back and the tool reports end-to-end throughput plus the server's
// fusion statistics.
//
// With no -addr it benchmarks the in-process server twice — once with
// batching enabled (fused) and once with MaxBatchRequests=1 (unfused,
// every request is its own kernel pass) — and prints the speedup, the
// number EXPERIMENTS.md tracks. With -addr it drives a running scansd
// over TCP, one connection per client. With -stream each vector is
// pushed through a streaming session in -chunk-element chunks instead
// of a one-shot request, measuring the cross-chunk-carry path.
//
// -op accepts a comma-separated operator list (e.g.
// -op sum,user:add,user:gcd): requests round-robin across the ops, so
// one phase measures a realistic interleave of native kernels and
// combine-VM dispatch. user:<name> ops whose name matches a built-in
// example monoid auto-register that example when -register is absent;
// outcomes are tallied per op as well as in aggregate.
//
// Every request's terminal outcome is counted separately — served,
// rejected-overloaded, shed by queue age, deadline-expired, failed by
// an isolated kernel panic, lost (no terminal outcome after the retry
// budget: connection died and redials failed) — so degradation under
// load or chaos is visible rather than averaged away. Transient
// failures (overload, shed, kernel panic, dropped connections) are
// retried with exponential backoff + jitter via serve.RetryPolicy;
// scanload exits non-zero if any request is LOST, because a fault-
// tolerant server may degrade but must never swallow a request.
//
// -proto selects the wire protocol for remote and cluster modes: json
// (the legacy newline-JSON baseline) or bin (the internal/binwire
// length-prefixed binary protocol — raw little-endian payloads, no
// per-element parsing, multiplexed request ids). The -bench-json
// report records it in a "wire" field, so a sweep over both protocols
// (-bench-append accumulates phases into one file) yields the json-vs-
// bin table EXPERIMENTS.md tracks.
//
// With -workers N (N >= 1) scanload instead stands up a full in-process
// cluster topology — N scansd workers on loopback TCP plus a sharding
// coordinator (internal/cluster) — and drives the coordinator directly.
// Scans split into per-worker shards exactly as in a multi-host
// deployment; EXPERIMENTS.md uses this mode for the 1-vs-2-vs-4-worker
// scaling table. Coordinator failures surface in their own
// shard_failed outcome bucket.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scans/internal/arena"
	"scans/internal/cluster"
	"scans/internal/combine"
	"scans/internal/serve"
)

// outcomes tallies terminal per-request outcomes plus retry attempts.
// resumed and failedOver are failover-mode extras: streams re-attached
// by resume token, and requests (one-shot or streamed) that completed
// against a non-primary coordinator.
type outcomes struct {
	success     atomic.Uint64
	overloaded  atomic.Uint64
	shed        atomic.Uint64
	deadline    atomic.Uint64
	internal    atomic.Uint64
	badReq      atomic.Uint64
	badOp       atomic.Uint64
	shardFailed atomic.Uint64
	lost        atomic.Uint64
	retries     atomic.Uint64
	redials     atomic.Uint64
	resumed     atomic.Uint64
	failedOver  atomic.Uint64
	// xchgFallback is a cluster-mode extra: scans the exchange data
	// plane abandoned mid-exchange and re-ran on the star plane (taken
	// from the coordinator's ledger after the run, not per-request — the
	// fallback is invisible to the caller by design).
	xchgFallback atomic.Uint64
}

// record classifies one terminal error (nil = success).
func (o *outcomes) record(err error) {
	switch {
	case err == nil:
		o.success.Add(1)
	// User-op failures are checked before shard_failed: a cluster wraps
	// them in ErrShardFailed for its ledger, but the op being wrong
	// (rejected registration, step budget, hash skew) is the story the
	// operator needs, not which shard carried the bad news.
	case errors.Is(err, serve.ErrBadOp), errors.Is(err, serve.ErrOpBudget), errors.Is(err, serve.ErrOpHash):
		o.badOp.Add(1)
	// shard_failed is checked before the generic sentinels: the
	// coordinator's wrapper keeps the last per-worker error in its
	// chain, which may itself match a more generic sentinel below.
	case errors.Is(err, serve.ErrShardFailed):
		o.shardFailed.Add(1)
	case errors.Is(err, serve.ErrOverloaded):
		o.overloaded.Add(1)
	case errors.Is(err, serve.ErrShed):
		o.shed.Add(1)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		o.deadline.Add(1)
	case errors.Is(err, serve.ErrInternal):
		o.internal.Add(1)
	case errors.Is(err, serve.ErrBadRequest):
		o.badReq.Add(1)
	default:
		// No classified response ever arrived: the request's fate is
		// unknown. This is the one outcome a robust deployment must
		// treat as an incident.
		o.lost.Add(1)
	}
}

func (o *outcomes) String() string {
	s := fmt.Sprintf(
		"outcomes: success=%d overloaded=%d shed=%d deadline=%d internal=%d bad_request=%d bad_op=%d shard_failed=%d lost=%d (retries=%d redials=%d)",
		o.success.Load(), o.overloaded.Load(), o.shed.Load(), o.deadline.Load(),
		o.internal.Load(), o.badReq.Load(), o.badOp.Load(), o.shardFailed.Load(), o.lost.Load(), o.retries.Load(), o.redials.Load())
	if r, f := o.resumed.Load(), o.failedOver.Load(); r > 0 || f > 0 {
		s += fmt.Sprintf(" resumed=%d failed_over=%d", r, f)
	}
	if x := o.xchgFallback.Load(); x > 0 {
		s += fmt.Sprintf(" exchange_fallback=%d", x)
	}
	return s
}

// counts renders the tallies as a map for the -bench-json report.
func (o *outcomes) counts() map[string]uint64 {
	return map[string]uint64{
		"success": o.success.Load(), "overloaded": o.overloaded.Load(),
		"shed": o.shed.Load(), "deadline": o.deadline.Load(),
		"internal": o.internal.Load(), "bad_request": o.badReq.Load(),
		"bad_op": o.badOp.Load(),
		"shard_failed": o.shardFailed.Load(), "lost": o.lost.Load(),
		"retries": o.retries.Load(), "redials": o.redials.Load(),
		"resumed": o.resumed.Load(), "failed_over": o.failedOver.Load(),
		"exchange_fallback": o.xchgFallback.Load(),
	}
}

// opSpec is one operator in the (possibly mixed) workload: the raw -op
// token, its parsed spec, and — for user:<name> ops — the combine-op
// source to register before the run ("" leaves the op unregistered, so
// requests land in the bad_op bucket by design).
type opSpec struct {
	op   string
	spec serve.Spec
	name string
	src  string
}

// resolveOps parses the comma-separated -op list and resolves each
// user:<name> op's combine source. -register (a file path or
// example:<name>) applies when the list has exactly one user op; in
// mixed-op runs each user:<name> auto-registers the example monoid of
// the same name if one exists.
func resolveOps(opsCSV, register, kind, dir string) ([]opSpec, error) {
	var ops []opSpec
	userOps := 0
	for _, tok := range strings.Split(opsCSV, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		spec, err := serve.ParseSpec(tok, kind, dir)
		if err != nil {
			return nil, err
		}
		o := opSpec{op: tok, spec: spec}
		if name, ok := strings.CutPrefix(tok, "user:"); ok {
			o.name = name
			userOps++
			if src, ok := combine.Examples[name]; ok {
				o.src = src
			}
		}
		ops = append(ops, o)
	}
	if len(ops) == 0 {
		return nil, errors.New("-op: empty operator list")
	}
	if register != "" {
		if userOps != 1 {
			return nil, errors.New("-register needs exactly one user:<name> op; mixed-op runs auto-register example monoids by name")
		}
		src := ""
		if ex, ok := strings.CutPrefix(register, "example:"); ok {
			if src, ok = combine.Examples[ex]; !ok {
				return nil, fmt.Errorf("unknown example monoid %q", ex)
			}
		} else {
			b, err := os.ReadFile(register)
			if err != nil {
				return nil, err
			}
			src = string(b)
		}
		for i := range ops {
			if ops[i].name != "" {
				ops[i].src = src
			}
		}
	}
	return ops, nil
}

// newOutcomeSet allocates one outcome bucket per workload op.
func newOutcomeSet(nOps int) []*outcomes {
	outs := make([]*outcomes, nOps)
	for i := range outs {
		outs[i] = &outcomes{}
	}
	return outs
}

// aggregateOutcomes folds per-op buckets into one totals block for the
// top-line report and the lost-request exit check. A single-op set is
// returned as-is.
func aggregateOutcomes(outs []*outcomes) *outcomes {
	if len(outs) == 1 {
		return outs[0]
	}
	agg := &outcomes{}
	for _, o := range outs {
		agg.success.Add(o.success.Load())
		agg.overloaded.Add(o.overloaded.Load())
		agg.shed.Add(o.shed.Load())
		agg.deadline.Add(o.deadline.Load())
		agg.internal.Add(o.internal.Load())
		agg.badReq.Add(o.badReq.Load())
		agg.badOp.Add(o.badOp.Load())
		agg.shardFailed.Add(o.shardFailed.Load())
		agg.lost.Add(o.lost.Load())
		agg.retries.Add(o.retries.Load())
		agg.redials.Add(o.redials.Load())
		agg.resumed.Add(o.resumed.Load())
		agg.failedOver.Add(o.failedOver.Load())
		agg.xchgFallback.Add(o.xchgFallback.Load())
	}
	return agg
}

// perOpCounts renders the per-op buckets for the -bench-json report.
func perOpCounts(ops []opSpec, outs []*outcomes) map[string]map[string]uint64 {
	m := make(map[string]map[string]uint64, len(ops))
	for i, o := range ops {
		m[o.op] = outs[i].counts()
	}
	return m
}

// printPerOp prints one outcome line per op after the aggregate, so a
// mixed workload shows which operator degraded.
func printPerOp(ops []opSpec, outs []*outcomes) {
	if len(ops) <= 1 {
		return
	}
	for i, o := range ops {
		fmt.Printf("   [%-12s] %s\n", o.op, outs[i])
	}
}

// workloadLabel names the workload for the phase banner: the spec for a
// single op, the op list for a round-robin mix.
func workloadLabel(ops []opSpec) string {
	if len(ops) == 1 {
		return ops[0].spec.String()
	}
	names := make([]string, len(ops))
	for i, o := range ops {
		names[i] = o.op
	}
	return strings.Join(names, "+") + " round-robin"
}

// latRec collects per-request end-to-end latencies across all client
// goroutines for the -bench-json percentile report.
type latRec struct {
	mu sync.Mutex
	ds []time.Duration
}

var benchLat latRec

func (l *latRec) add(d time.Duration) {
	l.mu.Lock()
	l.ds = append(l.ds, d)
	l.mu.Unlock()
}

// percentiles returns the p-th percentile latencies in milliseconds.
func (l *latRec) percentiles(ps ...int) []float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]float64, len(ps))
	if len(l.ds) == 0 {
		return out
	}
	sort.Slice(l.ds, func(i, j int) bool { return l.ds[i] < l.ds[j] })
	for i, p := range ps {
		idx := len(l.ds) * p / 100
		if idx >= len(l.ds) {
			idx = len(l.ds) - 1
		}
		out[i] = float64(l.ds[idx]) / float64(time.Millisecond)
	}
	return out
}

// benchReport is the BENCH_serve.json schema: one measured load phase —
// throughput, latency percentiles, per-request allocation cost from
// runtime.MemStats deltas (whole process: clients AND server), the
// outcome tallies, and the arena gauges showing what the pools
// absorbed. EXPERIMENTS.md documents the fields.
type benchReport struct {
	Mode             string            `json:"mode"`
	Wire             string            `json:"wire"`
	// Op is the scan operator the phase drove ("sum", "user:gcd", or a
	// comma list for mixed-op runs), so a native-vs-VM sweep yields
	// distinguishable rows.
	Op string `json:"op,omitempty"`
	// Gomaxprocs and NumCPU pin the host parallelism the row was
	// measured under; VMDispatch records the combine-VM dispatch mode
	// ("vector" or "scalar") applied to the servers the phase stood up
	// (for -addr it echoes the flag — set it to match the remote scansd).
	Gomaxprocs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	VMDispatch string `json:"vm_dispatch"`
	Requests         int               `json:"requests"`
	Clients          int               `json:"clients"`
	ElemsPerRequest  int               `json:"elems_per_request"`
	ElapsedSeconds   float64           `json:"elapsed_seconds"`
	RequestsPerSec   float64           `json:"requests_per_sec"`
	ElemsPerSec      float64           `json:"elems_per_sec"`
	P50LatencyMs     float64           `json:"p50_latency_ms"`
	P99LatencyMs     float64           `json:"p99_latency_ms"`
	AllocsPerRequest float64           `json:"allocs_per_request"`
	AllocBytesPerReq float64           `json:"alloc_bytes_per_request"`
	ArenaBytesPooled uint64            `json:"arena_bytes_pooled"`
	ArenaMisses      uint64            `json:"arena_misses"`
	FusionSpeedup    float64           `json:"fusion_speedup,omitempty"`
	// FailoverGapMs (failover mode) is the time from killing the primary
	// coordinator to the first request completed via the standby — the
	// client-observed outage window.
	FailoverGapMs float64           `json:"failover_gap_ms,omitempty"`
	Outcomes      map[string]uint64 `json:"outcomes"`
	// PerOpOutcomes splits the tallies by operator for mixed-op runs
	// (-op a,b,c); absent when the phase drove a single op.
	PerOpOutcomes map[string]map[string]uint64 `json:"per_op_outcomes,omitempty"`
}

// memSnap snapshots the allocator after a GC settles the heap, so two
// snapshots bracket a phase's true allocation traffic.
func memSnap() runtime.MemStats {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m
}

func (r *benchReport) fillMem(m0, m1 runtime.MemStats, requests int) {
	r.AllocsPerRequest = float64(m1.Mallocs-m0.Mallocs) / float64(requests)
	r.AllocBytesPerReq = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(requests)
	ac := arena.Stats()
	r.ArenaBytesPooled = ac.BytesPooled
	r.ArenaMisses = ac.Misses
}

// benchPhase assembles one measured phase's report from the latency
// recorder, the pre-phase allocator snapshot, and the outcome tallies.
// wire names the protocol the phase's scan payloads traveled over:
// "json", "bin", or "none" for in-process phases with no wire at all;
// vm is the combine-VM dispatch mode the phase ran under.
func benchPhase(mode, wire, vm string, clients, requests, n int, elapsed time.Duration, m0 runtime.MemStats, out *outcomes) benchReport {
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	ps := benchLat.percentiles(50, 99)
	rps := float64(requests) / elapsed.Seconds()
	r := benchReport{
		Mode:            mode,
		Wire:            wire,
		Gomaxprocs:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		VMDispatch:      vm,
		Requests:        requests,
		Clients:         clients,
		ElemsPerRequest: n,
		ElapsedSeconds:  elapsed.Seconds(),
		RequestsPerSec:  rps,
		ElemsPerSec:     rps * float64(n),
		P50LatencyMs:    ps[0],
		P99LatencyMs:    ps[1],
		Outcomes:        out.counts(),
	}
	r.fillMem(m0, m1, requests)
	return r
}

// writeBenchJSON writes the report file: always a JSON ARRAY of phase
// reports, so one benchmark sweep (e.g. json vs bin × worker counts)
// accumulates into a single machine-readable file. With appendTo set,
// an existing file's reports are kept and the new phase is appended
// (a legacy single-object file is absorbed as a one-element array);
// otherwise the file is started fresh.
func writeBenchJSON(path string, r benchReport, appendTo bool) {
	var reports []json.RawMessage
	if appendTo {
		if prev, err := os.ReadFile(path); err == nil {
			if json.Unmarshal(prev, &reports) != nil {
				var single json.RawMessage
				if json.Unmarshal(prev, &single) == nil && len(single) > 0 && single[0] == '{' {
					reports = []json.RawMessage{single}
				}
			}
		}
	}
	b, err := json.Marshal(r)
	if err == nil {
		reports = append(reports, json.RawMessage(b))
		var out []byte
		out, err = json.MarshalIndent(reports, "", "  ")
		if err == nil {
			err = os.WriteFile(path, append(out, '\n'), 0o644)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scanload: -bench-json:", err)
		os.Exit(1)
	}
	fmt.Println("bench report written to", path)
}

func main() {
	var (
		addr      = flag.String("addr", "", "scansd address; empty = benchmark the in-process server fused vs unfused")
		clients   = flag.Int("clients", 32, "concurrent closed-loop clients")
		requests  = flag.Int("requests", 10000, "total requests across all clients")
		n         = flag.Int("n", 256, "elements per scan request")
		op        = flag.String("op", "sum", "scan operator, or a comma list to round-robin a mixed workload: sum, max, min, mul, user:<name> (see -register; in a mix, user:<name> auto-registers the example monoid of that name)")
		register  = flag.String("register", "", "combine-op source for a single -op user:<name>: a file path, or example:<name> for a built-in example monoid (add, gcd, bor, band, satadd, argmax); registered before the run")
		vmDisp    = flag.String("vm-dispatch", serve.VMDispatchVector, "combine-VM dispatch mode for the servers this tool stands up (in-process and cluster workers): vector or scalar; recorded in -bench-json rows")
		kind      = flag.String("kind", "exclusive", "exclusive or inclusive")
		dir       = flag.String("dir", "forward", "forward or backward")
		maxWait   = flag.Duration("max-wait", 100*time.Microsecond, "batching window (in-process mode)")
		timeout   = flag.Duration("timeout", 5*time.Second, "per-request deadline (0 = none)")
		attempts  = flag.Int("retries", 4, "retry budget per request (total attempts)")
		stream    = flag.Bool("stream", false, "use streaming sessions: push each vector through the server in -chunk-element chunks")
		chunk     = flag.Int("chunk", 0, "stream chunk size in elements (0 = serve.DefaultStreamChunk)")
		workersN  = flag.Int("workers", 0, "run an in-process cluster: this many scansd workers behind a sharding coordinator (0 = off)")
		killAfter = flag.Duration("kill-coordinator-after", 0, "cluster mode: kill the primary coordinator's front end after this long; clients fail over to a replicated standby (0 = off)")
		proto     = flag.String("proto", serve.ProtoJSON, "wire protocol for remote and cluster modes: json or bin")
		dataPlane = flag.String("data-plane", cluster.DataPlaneStar, "cluster mode: carry data plane (star or exchange)")
		benchPath = flag.String("bench-json", "", "write a machine-readable bench report (throughput, p50/p99 latency, outcome counts, allocs/request) to this path")
		benchApp  = flag.Bool("bench-append", false, "append this phase to an existing -bench-json file instead of starting it fresh")
	)
	flag.Parse()
	if *chunk <= 0 {
		*chunk = serve.DefaultStreamChunk
	}

	ops, err := resolveOps(*op, *register, *kind, *dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scanload:", err)
		os.Exit(1)
	}
	policy := serve.RetryPolicy{MaxAttempts: *attempts}

	if *killAfter > 0 && *workersN <= 0 {
		fmt.Fprintln(os.Stderr, "scanload: -kill-coordinator-after needs cluster mode (-workers N)")
		os.Exit(1)
	}
	if *killAfter > 0 && (len(ops) > 1 || ops[0].src != "") {
		fmt.Fprintln(os.Stderr, "scanload: mixed ops and user-op registration are not supported in failover mode")
		os.Exit(1)
	}

	if *workersN > 0 {
		if *addr != "" {
			fmt.Fprintln(os.Stderr, "scanload: -workers and -addr are mutually exclusive")
			os.Exit(1)
		}
		if *killAfter > 0 {
			var out outcomes
			fmt.Printf("cluster failover: %d workers (%s wire), primary+standby coordinators, kill primary after %v, %d clients × %d-element %s scans, %d requests total\n",
				*workersN, *proto, *killAfter, *clients, *n, ops[0].spec, *requests)
			m0 := memSnap()
			elapsed, cst, gapMs, err := driveFailover(*workersN, *proto, *vmDisp, ops[0].spec, ops[0].op, *kind, *dir,
				*clients, *requests, *n, *maxWait, *timeout, *killAfter, policy, &out, *stream, *chunk)
			if err != nil {
				fmt.Fprintln(os.Stderr, "scanload:", err)
				os.Exit(1)
			}
			if *benchPath != "" {
				rep := benchPhase(fmt.Sprintf("cluster-%dw-failover", *workersN), *proto, *vmDisp,
					*clients, *requests, *n, elapsed, m0, &out)
				rep.Op = *op
				rep.FailoverGapMs = gapMs
				writeBenchJSON(*benchPath, rep, *benchApp)
			}
			report(fmt.Sprintf("%dw-fo", *workersN), *requests, *n, elapsed)
			fmt.Println("  ", cst)
			fmt.Println("  ", out.String())
			if gapMs > 0 {
				fmt.Printf("   failover gap: %.1fms (primary killed → first standby-served request)\n", gapMs)
			}
			if lost := out.lost.Load(); lost > 0 {
				fmt.Fprintf(os.Stderr, "scanload: %d request(s) LOST (no terminal outcome)\n", lost)
				os.Exit(1)
			}
			return
		}
		fmt.Printf("cluster: %d workers (%s wire, %s data plane), %d clients × %d-element %s scans, %d requests total\n",
			*workersN, *proto, *dataPlane, *clients, *n, workloadLabel(ops), *requests)
		outs := newOutcomeSet(len(ops))
		m0 := memSnap()
		elapsed, cst, err := driveCluster(*workersN, *proto, *dataPlane, *vmDisp, ops, *clients, *requests, *n, *maxWait, *timeout, policy, outs, *stream, *chunk)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scanload:", err)
			os.Exit(1)
		}
		out := aggregateOutcomes(outs)
		out.xchgFallback.Store(cst.XchgFallbacks)
		if *benchPath != "" {
			phase := fmt.Sprintf("cluster-%dw", *workersN)
			if *dataPlane == cluster.DataPlaneExchange {
				phase += "-exchange"
			}
			rep := benchPhase(phase, *proto, *vmDisp, *clients, *requests, *n, elapsed, m0, out)
			rep.Op = *op
			if len(ops) > 1 {
				rep.PerOpOutcomes = perOpCounts(ops, outs)
			}
			writeBenchJSON(*benchPath, rep, *benchApp)
		}
		report(fmt.Sprintf("%dw", *workersN), *requests, *n, elapsed)
		fmt.Println("  ", cst)
		fmt.Println("  ", out.String())
		printPerOp(ops, outs)
		if lost := out.lost.Load(); lost > 0 {
			fmt.Fprintf(os.Stderr, "scanload: %d request(s) LOST (no terminal outcome)\n", lost)
			os.Exit(1)
		}
		return
	}

	if *addr != "" {
		outs := newOutcomeSet(len(ops))
		m0 := memSnap()
		elapsed, err := driveRemote(*addr, *proto, *clients, *requests, *n, ops, *kind, *dir, *timeout, policy, outs, *stream, *chunk)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scanload:", err)
			os.Exit(1)
		}
		out := aggregateOutcomes(outs)
		label := "remote " + *addr
		if *stream {
			label += " (streamed)"
		}
		if *benchPath != "" {
			rep := benchPhase(label, *proto, *vmDisp, *clients, *requests, *n, elapsed, m0, out)
			rep.Op = *op
			if len(ops) > 1 {
				rep.PerOpOutcomes = perOpCounts(ops, outs)
			}
			writeBenchJSON(*benchPath, rep, *benchApp)
		}
		report(label, *requests, *n, elapsed)
		fmt.Println("  ", out.String())
		printPerOp(ops, outs)
		if lost := out.lost.Load(); lost > 0 {
			fmt.Fprintf(os.Stderr, "scanload: %d request(s) LOST (no terminal outcome)\n", lost)
			os.Exit(1)
		}
		return
	}

	fused := serve.Config{MaxWait: *maxWait, QueueLimit: 1 << 15, VMDispatch: *vmDisp}
	unfused := fused
	unfused.MaxBatchRequests = 1

	mode := ""
	if *stream {
		mode = fmt.Sprintf(" (streamed, %d-element chunks)", *chunk)
	}
	fmt.Printf("in-process: %d clients × %d-element %s scans, %d requests total%s\n",
		*clients, *n, workloadLabel(ops), *requests, mode)
	outsFused, outsUnfused := newOutcomeSet(len(ops)), newOutcomeSet(len(ops))
	m0 := memSnap()
	tFused, stFused := driveInProcess(fused, ops, *clients, *requests, *n, *timeout, policy, outsFused, *stream, *chunk)
	outFused := aggregateOutcomes(outsFused)
	// The bench report covers the fused phase only (the production
	// config); the unfused phase below exists to price fusion.
	rep := benchPhase("in-process-fused", "none", *vmDisp, *clients, *requests, *n, tFused, m0, outFused)
	rep.Op = *op
	if len(ops) > 1 {
		rep.PerOpOutcomes = perOpCounts(ops, outsFused)
	}
	report("fused", *requests, *n, tFused)
	fmt.Println("  ", stFused)
	fmt.Println("  ", outFused.String())
	printPerOp(ops, outsFused)
	tUnfused, stUnfused := driveInProcess(unfused, ops, *clients, *requests, *n, *timeout, policy, outsUnfused, *stream, *chunk)
	outUnfused := aggregateOutcomes(outsUnfused)
	report("unfused", *requests, *n, tUnfused)
	fmt.Println("  ", stUnfused)
	fmt.Println("  ", outUnfused.String())
	printPerOp(ops, outsUnfused)
	fmt.Printf("fusion speedup: %.2fx\n", float64(tUnfused)/float64(tFused))
	if *benchPath != "" {
		rep.FusionSpeedup = float64(tUnfused) / float64(tFused)
		writeBenchJSON(*benchPath, rep, *benchApp)
	}
	if lost := outFused.lost.Load() + outUnfused.lost.Load(); lost > 0 {
		fmt.Fprintf(os.Stderr, "scanload: %d request(s) LOST (no terminal outcome)\n", lost)
		os.Exit(1)
	}
}

// driveInProcess runs one closed-loop phase against a fresh in-process
// server and returns the elapsed time and the server's final stats.
// Requests round-robin across ops; each terminal outcome lands in its
// op's bucket in outs.
func driveInProcess(cfg serve.Config, ops []opSpec, clients, requests, n int,
	timeout time.Duration, policy serve.RetryPolicy, outs []*outcomes, stream bool, chunk int) (time.Duration, serve.Stats) {
	srv := serve.New(cfg)
	for _, o := range ops {
		if o.src == "" {
			continue
		}
		// In-process requests run under the "" tenant; register there.
		if _, err := srv.RegisterScanOp("", o.name, o.src); err != nil {
			fmt.Fprintln(os.Stderr, "scanload: register:", err)
			os.Exit(1)
		}
	}
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			data := randomData(int64(c), n)
			for i := 0; i < requests/clients; i++ {
				oi := i % len(ops)
				spec := ops[oi].spec
				t0 := time.Now()
				attempts, err := policy.Do(context.Background(), func() error {
					ctx := context.Background()
					cancel := context.CancelFunc(func() {})
					if timeout > 0 {
						ctx, cancel = context.WithTimeout(ctx, timeout)
					}
					defer cancel()
					if !stream || len(data) <= chunk {
						res, err := srv.SubmitCtx(ctx, spec, data)
						releaseResult(res)
						return err
					}
					st, err := srv.OpenStream(spec, "")
					if err != nil {
						return err
					}
					for off := 0; off < len(data); off += chunk {
						end := min(off+chunk, len(data))
						res, err := st.Push(ctx, data[off:end])
						releaseResult(res)
						if err != nil {
							return err
						}
					}
					_, err = st.Close()
					return err
				})
				benchLat.add(time.Since(t0))
				outs[oi].retries.Add(uint64(attempts - 1))
				outs[oi].record(err)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	srv.Close()
	return elapsed, srv.Stats()
}

// driveRemote runs the closed loop over TCP, one connection per
// client. A connection-level failure inside the retry loop triggers a
// redial: scans are pure, so resubmitting on a fresh connection is
// safe, and a request only counts as lost once the retry budget is
// exhausted without any classified response.
func driveRemote(addr, proto string, clients, requests, n int, ops []opSpec, kind, dir string,
	timeout time.Duration, policy serve.RetryPolicy, outs []*outcomes, stream bool, chunk int) (time.Duration, error) {
	conns := make([]*serve.Client, clients)
	for i := range conns {
		c, err := serve.DialProto(addr, proto)
		if err != nil {
			return 0, err
		}
		conns[i] = c
		for _, o := range ops {
			if o.src == "" {
				continue
			}
			// Scans and streams run under each connection's default
			// tenant, so each op is registered once per connection.
			if _, err := c.RegisterOp(context.Background(), "", o.name, o.src); err != nil {
				return 0, fmt.Errorf("register %q: %w", o.name, err)
			}
		}
	}
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			data := randomData(int64(c), n)
			for i := 0; i < requests/clients; i++ {
				oi := i % len(ops)
				op := ops[oi].op
				t0 := time.Now()
				attempts, err := policy.Do(context.Background(), func() error {
					ctx := context.Background()
					cancel := context.CancelFunc(func() {})
					if timeout > 0 {
						ctx, cancel = context.WithTimeout(ctx, timeout)
					}
					defer cancel()
					var res []int64
					var err error
					if stream {
						// A retried StreamScan opens a fresh session, so
						// retrying a failed stream is safe end to end.
						res, err = conns[c].StreamScan(ctx, op, kind, dir, data, chunk)
					} else {
						res, err = conns[c].ScanCtx(ctx, op, kind, dir, data)
					}
					releaseResult(res)
					if err != nil && !policy.Retryable(err) {
						return err
					}
					if err != nil && isConnError(err) {
						// Unknown fate: the conn died. Redial so the
						// next attempt has a live connection.
						if fresh, derr := serve.DialProto(addr, proto); derr == nil {
							conns[c].Close()
							conns[c] = fresh
							outs[oi].redials.Add(1)
						}
					}
					return err
				})
				benchLat.add(time.Since(t0))
				outs[oi].retries.Add(uint64(attempts - 1))
				outs[oi].record(err)
			}
		}(c)
	}
	wg.Wait()
	return time.Since(start), nil
}

// releaseResult returns a scan result to the arena. Every non-empty
// result from serve/cluster — in-process or decoded off the wire — is
// arena-backed and owned by the caller; a load generator that never
// recycled them would starve the pools and overstate allocation cost.
func releaseResult(res []int64) {
	if len(res) > 0 {
		arena.PutInt64s(res)
	}
}

// isConnError reports whether err is a connection-level failure rather
// than a typed, classified server response.
func isConnError(err error) bool {
	return err != nil &&
		!errors.Is(err, serve.ErrOverloaded) &&
		!errors.Is(err, serve.ErrShed) &&
		!errors.Is(err, serve.ErrInternal) &&
		!errors.Is(err, serve.ErrBadRequest) &&
		!errors.Is(err, serve.ErrClosed) &&
		!errors.Is(err, serve.ErrShardFailed) &&
		!errors.Is(err, context.DeadlineExceeded)
}

// driveCluster stands up nWorkers scansd workers on loopback TCP plus a
// sharding coordinator, then runs the closed loop against the
// coordinator. Giant scans split into per-worker shards exactly as they
// would across hosts; the coordinator's own retry/hedge machinery is
// live, and its stats are returned for the report.
func driveCluster(nWorkers int, proto, dataPlane, vmDisp string, ops []opSpec, clients, requests, n int,
	maxWait, timeout time.Duration, policy serve.RetryPolicy, outs []*outcomes, stream bool, chunk int) (time.Duration, cluster.Stats, error) {
	wcfg := serve.Config{MaxWait: maxWait, QueueLimit: 1 << 15, VMDispatch: vmDisp}
	workers := make([]*serve.NetServer, 0, nWorkers)
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	addrs := make([]string, 0, nWorkers)
	for i := 0; i < nWorkers; i++ {
		ns, err := serve.ListenNet("127.0.0.1:0", wcfg, serve.NetConfig{})
		if err != nil {
			return 0, cluster.Stats{}, fmt.Errorf("worker %d: %w", i, err)
		}
		workers = append(workers, ns)
		addrs = append(addrs, ns.Addr())
	}
	coord, err := cluster.New(cluster.Config{
		Workers:   addrs,
		Proto:     proto,
		DataPlane: dataPlane,
		Retry:     serve.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond},
	})
	if err != nil {
		return 0, cluster.Stats{}, err
	}
	defer coord.Close()
	for _, o := range ops {
		if o.src == "" {
			continue
		}
		// Each closed-loop client scans under its own fairness tenant,
		// and user-op registries are tenant-scoped.
		for c := 0; c < clients; c++ {
			if _, err := coord.RegisterScanOp(fmt.Sprintf("client-%d", c), o.name, o.src); err != nil {
				return 0, cluster.Stats{}, fmt.Errorf("register %q: %w", o.name, err)
			}
		}
	}

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			data := randomData(int64(c), n)
			tenant := fmt.Sprintf("client-%d", c)
			for i := 0; i < requests/clients; i++ {
				oi := i % len(ops)
				spec := ops[oi].spec
				t0 := time.Now()
				attempts, err := policy.Do(context.Background(), func() error {
					ctx := context.Background()
					cancel := context.CancelFunc(func() {})
					if timeout > 0 {
						ctx, cancel = context.WithTimeout(ctx, timeout)
					}
					defer cancel()
					if !stream || len(data) <= chunk {
						res, err := coord.Scan(ctx, spec, data, tenant)
						releaseResult(res)
						return err
					}
					st, err := coord.OpenScanStream(spec, tenant)
					if err != nil {
						return err
					}
					for off := 0; off < len(data); off += chunk {
						end := min(off+chunk, len(data))
						res, err := st.Push(ctx, data[off:end])
						releaseResult(res)
						if err != nil {
							return err
						}
					}
					_, err = st.Close()
					return err
				})
				benchLat.add(time.Since(t0))
				outs[oi].retries.Add(uint64(attempts - 1))
				outs[oi].record(err)
			}
		}(c)
	}
	wg.Wait()
	// The exchange-fallback tally is run-level (taken from the
	// coordinator's ledger), so the caller attaches it to the aggregate.
	return time.Since(start), coord.Stats(), nil
}

// driveFailover is driveCluster with a control-plane murder scheduled:
// the fleet sits behind TWO coordinators — a primary publishing its
// stream-session records and a standby mirroring them — and after
// killAfter the primary's TCP front end is killed mid-load. Clients use
// serve.FailoverClient, so one-shots re-issue on the standby and
// in-flight streams resume by token, bit-identically. Returns the
// standby's stats (the coordinator that finishes the run) and the
// failover gap in ms: primary killed → first standby-served request.
func driveFailover(nWorkers int, proto, vmDisp string, spec serve.Spec, op, kind, dir string,
	clients, requests, n int, maxWait, timeout, killAfter time.Duration,
	policy serve.RetryPolicy, out *outcomes, stream bool, chunk int) (time.Duration, cluster.Stats, float64, error) {
	wcfg := serve.Config{MaxWait: maxWait, QueueLimit: 1 << 15, VMDispatch: vmDisp}
	workers := make([]*serve.NetServer, 0, nWorkers)
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	addrs := make([]string, 0, nWorkers)
	for i := 0; i < nWorkers; i++ {
		ns, err := serve.ListenNet("127.0.0.1:0", wcfg, serve.NetConfig{})
		if err != nil {
			return 0, cluster.Stats{}, 0, fmt.Errorf("worker %d: %w", i, err)
		}
		workers = append(workers, ns)
		addrs = append(addrs, ns.Addr())
	}
	retry := serve.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond}
	primary, err := cluster.New(cluster.Config{
		Workers: addrs, Proto: proto, Retry: retry, ReplListen: "127.0.0.1:0",
	})
	if err != nil {
		return 0, cluster.Stats{}, 0, err
	}
	defer primary.Close()
	primNS, err := serve.ListenBackend("127.0.0.1:0", primary, serve.NetConfig{})
	if err != nil {
		return 0, cluster.Stats{}, 0, err
	}
	standby, err := cluster.New(cluster.Config{
		Workers: addrs, Proto: proto, Retry: retry, Follow: primary.ReplAddr(),
	})
	if err != nil {
		primNS.Close()
		return 0, cluster.Stats{}, 0, err
	}
	stbyNS, err := serve.ListenBackend("127.0.0.1:0", standby, serve.NetConfig{})
	if err != nil {
		primNS.Close()
		standby.Close()
		return 0, cluster.Stats{}, 0, err
	}

	fcs := make([]*serve.FailoverClient, clients)
	for c := range fcs {
		fc, err := serve.DialFailover(proto, 0, primNS.Addr(), stbyNS.Addr())
		if err != nil {
			primNS.Close()
			stbyNS.Close()
			return 0, cluster.Stats{}, 0, err
		}
		fcs[c] = fc
	}

	var killTime atomic.Int64
	killer := time.AfterFunc(killAfter, func() {
		killTime.Store(time.Now().UnixNano())
		// Kill, not Close: slam the listener and every live connection
		// with no drain — the impolite death failover exists for. The
		// primary's backend (and its replication feed) dies right after.
		primNS.Kill()
		go primary.Close()
	})
	defer killer.Stop()

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			data := randomData(int64(c), n)
			for i := 0; i < requests/clients; i++ {
				t0 := time.Now()
				attempts, err := policy.Do(context.Background(), func() error {
					ctx := context.Background()
					cancel := context.CancelFunc(func() {})
					if timeout > 0 {
						ctx, cancel = context.WithTimeout(ctx, timeout)
					}
					defer cancel()
					var res []int64
					var err error
					if stream {
						res, err = fcs[c].StreamScan(ctx, op, kind, dir, data, chunk)
					} else {
						res, err = fcs[c].ScanCtx(ctx, op, kind, dir, data)
					}
					releaseResult(res)
					return err
				})
				benchLat.add(time.Since(t0))
				out.retries.Add(uint64(attempts - 1))
				out.record(err)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	gapMs := 0.0
	if kt := killTime.Load(); kt > 0 {
		firstAlt := int64(0)
		for _, fc := range fcs {
			if t := fc.FirstFailoverAt(); !t.IsZero() {
				if ns := t.UnixNano(); firstAlt == 0 || ns < firstAlt {
					firstAlt = ns
				}
			}
		}
		if firstAlt > kt {
			gapMs = float64(firstAlt-kt) / float64(time.Millisecond)
		}
	}
	for _, fc := range fcs {
		out.resumed.Add(fc.Resumed())
		out.failedOver.Add(fc.FailedOver())
		fc.Close()
	}
	stbyNS.Close()
	cst := standby.Stats()
	primNS.Close()
	return elapsed, cst, gapMs, nil
}

func randomData(seed int64, n int) []int64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(rng.Intn(100))
	}
	return data
}

func report(label string, requests, n int, elapsed time.Duration) {
	rps := float64(requests) / elapsed.Seconds()
	fmt.Printf("%-8s %8d req in %10v  →  %10.0f req/s  %12.0f elems/s\n",
		label, requests, elapsed.Round(time.Millisecond), rps, rps*float64(n))
}
