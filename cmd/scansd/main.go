// Command scansd is the scan service daemon: a TCP front end over
// internal/serve's batching server. Clients speak newline-delimited
// JSON (one request per line, one response per line, matched by id):
//
//	{"id":1,"op":"sum","kind":"exclusive","dir":"forward","data":[2,1,2]}
//	{"id":1,"result":[0,2,3]}
//
// Every connection's requests fuse into the same batches, so N remote
// clients issuing small scans cost one segmented kernel pass per
// batching window, not N passes. cmd/scanload is the matching load
// generator.
//
// A connection may instead negotiate the length-prefixed BINARY
// protocol (internal/binwire) by opening with the "\x00bin/1\n"
// preamble: payload vectors travel as raw little-endian words with no
// per-element parsing, and any number of requests multiplex in flight
// on one connection. The server answers the preamble in kind and
// speaks binary for the rest of the connection; legacy clients that
// never send it get newline-JSON exactly as before. serve.DialBin (and
// scanload -proto bin) speak it; a binary-first client degrades to
// JSON per connection against a pre-binwire server.
//
// Error responses carry a machine-readable "code" ("overloaded",
// "shed", "deadline", "internal", ...) so clients can branch retry vs
// give-up; requests may carry "timeout_ms" (the server drops them
// unexecuted once expired) and "tenant" (fair-share batching domain,
// defaulting to the connection).
//
// Long vectors stream: "type":"stream_open" / "stream_chunk" /
// "stream_close" messages push one logical vector through the batcher
// chunk by chunk, the server carrying the running prefix across chunks
// (DESIGN.md §5). -max-streams and -stream-ttl bound the per-connection
// session state. The -chaos flag arms fault-injection
// points for soak testing the failure paths: a comma-separated list of
// name:probability[:duration] triples, e.g.
//
//	scansd -chaos 'kernel.panic:0.001,kernel.slow:0.01:5ms,conn.drop:0.002'
//
// over the points kernel.slow, kernel.panic, conn.drop,
// conn.partialwrite, exec.stall, and queue.corrupt-detect (plus
// cluster.worker.slow and cluster.worker.drop in coordinator mode).
//
// With -coordinator, scansd is instead a cluster COORDINATOR: it speaks
// the same wire protocol on the same -addr, but executes nothing
// locally — each scan is split into weight-proportional shards
// dispatched concurrently to the scansd workers named by -workers, with
// per-shard retries, hedging, and health-based ejection (DESIGN.md §6):
//
//	scansd -addr :7187 &                          # worker A
//	scansd -addr :7188 &                          # worker B
//	scansd -coordinator -addr :7190 -workers 127.0.0.1:7187,127.0.0.1:7188
//
// Results are bit-identical to a single worker serving the same scan.
//
// The control plane is dynamic and fault tolerant:
//
//   - Worker auto-discovery: a worker started with -announce
//     <coordinator-addr> heartbeats its own address into the
//     coordinator every -heartbeat interval and joins the live fleet
//     within one interval, no coordinator restart. A worker whose
//     heartbeats stop is ejected after -heartbeat-ttl; in-flight pieces
//     retry on the rest of the fleet. -workers may be empty on a pure
//     announce-driven coordinator.
//   - Coordinator standby failover: a coordinator with -repl-listen
//     publishes its stream-session records; a second coordinator with
//     -follow <primary-repl-addr> mirrors them and can serve resumed
//     streams (by the resume token clients get at stream-open) after
//     the primary dies — bit-identically. See DESIGN.md §9.
//   - Adaptive shard weights: per-worker latency EWMAs scale each
//     worker's planned share (bounded below by -weight-floor), so a
//     slow worker sheds load and earns it back when it recovers.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux; served only with -pprof
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"scans/internal/cluster"
	"scans/internal/fault"
	"scans/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7187", "TCP listen address")
		maxElems  = flag.Int("max-batch-elems", 1<<16, "flush a batch at this many fused elements")
		maxReqs   = flag.Int("max-batch-requests", 4096, "flush a batch at this many requests (1 = unfused)")
		maxWait   = flag.Duration("max-wait", 100*time.Microsecond, "batching window: how long the first request waits for company")
		queue     = flag.Int("queue", 4096, "bounded submission queue (full queue rejects with an overload error)")
		queueAge  = flag.Duration("queue-age", time.Second, "shed queued requests older than this before execution (0 = never shed)")
		kworkers  = flag.Int("kernel-workers", 0, "goroutines per segmented kernel pass (0 = GOMAXPROCS)")
		executors = flag.Int("executors", 0, "batch executor pool size (0 = GOMAXPROCS)")

		coordinator = flag.Bool("coordinator", false, "run as a cluster coordinator instead of a worker")
		workerAddrs = flag.String("workers", "", "coordinator: comma-separated worker addresses (host:port,...; may be empty with announce-driven discovery)")
		weights     = flag.String("worker-weights", "", "coordinator: comma-separated relative worker weights (default: equal)")
		minShard    = flag.Int("min-shard", 4096, "coordinator: don't split scans into shards smaller than this")
		maxPiece    = flag.Int("max-piece", 0, "coordinator: max elements per dispatched piece (0 = line-budget default)")
		hedgeAfter  = flag.Duration("hedge-after", 0, "coordinator: duplicate a slow shard on another worker after this long (0 = off)")
		ejectAfter  = flag.Int("eject-after", 3, "coordinator: eject a worker after this many consecutive connection failures")
		probeEvery  = flag.Duration("probe-interval", time.Second, "coordinator: probe ejected workers this often")
		workerProto = flag.String("worker-proto", serve.ProtoBin, "coordinator: wire protocol to workers (bin or json; bin degrades per connection against pre-binwire workers)")
		dataPlane   = flag.String("data-plane", cluster.DataPlaneStar, "coordinator: carry data plane (star = coordinator pre-seeds pieces, exchange = workers exchange block sums among themselves; exchange falls back to star per scan on any peer failure)")
		beatTTL     = flag.Duration("heartbeat-ttl", 2*time.Second, "coordinator: eject announced workers silent this long")
		weightFloor = flag.Float64("weight-floor", 0.1, "coordinator: adaptive weight floor as a fraction of a worker's base weight (0..1]")
		replListen  = flag.String("repl-listen", "", "coordinator: publish the stream-session replication feed on this address (for standbys)")
		follow      = flag.String("follow", "", "coordinator: mirror a primary's replication feed from this address (standby mode)")
		resumeTTL   = flag.Duration("resume-ttl", 2*time.Minute, "coordinator: keep detached stream sessions resumable this long")

		announce       = flag.String("announce", "", "worker: heartbeat into this coordinator address to join its fleet")
		announceAddr   = flag.String("announce-addr", "", "worker: address to advertise in heartbeats (default: the bound -addr)")
		announceWeight = flag.Float64("announce-weight", 1, "worker: capacity weight to advertise")
		beatEvery      = flag.Duration("heartbeat", 500*time.Millisecond, "worker: heartbeat interval for -announce")

		maxConns  = flag.Int("max-conns", 0, "max simultaneous client connections (0 = unlimited)")
		perConn   = flag.Int("per-conn-inflight", 0, "per-connection in-flight request cap (0 = unlimited)")
		idle      = flag.Duration("idle-timeout", 2*time.Minute, "close connections idle this long (0 = never)")
		wtimeout  = flag.Duration("write-timeout", 30*time.Second, "per-response write deadline")
		maxLine   = flag.Int("max-line-bytes", 16<<20, "reject request lines longer than this")
		maxStream = flag.Int("max-streams", 64, "per-connection open streaming session cap (-1 = disable streaming)")
		streamTTL = flag.Duration("stream-ttl", 2*time.Minute, "expire streaming sessions idle this long (-1s = never)")
		opCap     = flag.Int("op-cap", 0, "per-tenant cap on registered user combine ops (0 = default)")
	chaosSpec = flag.String("chaos", "", "arm fault points: name:prob[:duration],... (see package doc)")
		chaosSeed = flag.Int64("chaos-seed", 1, "fault-injection RNG seed")
		xchgRound = flag.Duration("xchg-round-timeout", 2*time.Second, "worker: per-round deadline for the exchange data plane's carry rounds")
		vmDisp    = flag.String("vm-dispatch", serve.VMDispatchVector, "user combine-op execution: vector (lane-blocked engine + native promotion) or scalar (per-element interpreter)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the pprof handlers via the blank
			// import; nothing else registers on it here.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "scansd: pprof:", err)
			}
		}()
		fmt.Println("scansd pprof on http://" + *pprofAddr + "/debug/pprof/")
	}

	faults, err := parseChaos(*chaosSpec, *chaosSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scansd:", err)
		os.Exit(1)
	}

	ncfg := serve.NetConfig{
		MaxLineBytes:     *maxLine,
		MaxConns:         *maxConns,
		PerConnInflight:  *perConn,
		IdleTimeout:      *idle,
		WriteTimeout:     *wtimeout,
		MaxStreams:       *maxStream,
		StreamIdleTTL:    *streamTTL,
		XchgRoundTimeout: *xchgRound,
		Faults:           faults,
	}

	var (
		ns    *serve.NetServer
		coord *cluster.Coordinator
	)
	if *coordinator {
		addrs := splitNonEmpty(*workerAddrs)
		if len(addrs) == 0 && *announce == "" && *follow == "" {
			fmt.Fprintln(os.Stderr, "scansd: -coordinator with no -workers serves nothing until workers -announce themselves")
		}
		ws, err := parseWeights(*weights, len(addrs))
		if err != nil {
			fmt.Fprintln(os.Stderr, "scansd:", err)
			os.Exit(1)
		}
		coord, err = cluster.New(cluster.Config{
			Workers:       addrs,
			Weights:       ws,
			MinShardElems: *minShard,
			MaxPieceElems: *maxPiece,
			MaxLineBytes:  *maxLine,
			Proto:         *workerProto,
			DataPlane:     *dataPlane,
			Retry:         serve.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond},
			HedgeAfter:    *hedgeAfter,
			EjectAfter:    *ejectAfter,
			ProbeInterval: *probeEvery,
			HeartbeatTTL:  *beatTTL,
			WeightFloor:   *weightFloor,
			ReplListen:    *replListen,
			Follow:        *follow,
			ResumeTTL:     *resumeTTL,
			OpCap:         *opCap,
			Faults:        faults,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "scansd:", err)
			os.Exit(1)
		}
		ns, err = serve.ListenBackend(*addr, coord, ncfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scansd:", err)
			os.Exit(1)
		}
		fmt.Printf("scansd coordinator listening on %s, sharding over %d workers %v\n", ns.Addr(), len(addrs), addrs)
		if ra := coord.ReplAddr(); ra != "" {
			fmt.Println("scansd coordinator replicating sessions on", ra)
		}
		if *follow != "" {
			fmt.Println("scansd coordinator standing by for", *follow)
		}
	} else {
		ns, err = serve.ListenNet(*addr, serve.Config{
			MaxBatchElems:    *maxElems,
			MaxBatchRequests: *maxReqs,
			MaxWait:          *maxWait,
			QueueLimit:       *queue,
			QueueAgeLimit:    *queueAge,
			Workers:          *kworkers,
			Executors:        *executors,
			OpCap:            *opCap,
			VMDispatch:       *vmDisp,
			Faults:           faults,
		}, ncfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scansd:", err)
			os.Exit(1)
		}
		fmt.Println("scansd listening on", ns.Addr())
	}
	if faults != nil {
		fmt.Println("scansd: CHAOS ARMED", faults)
	}

	var beatQuit chan struct{}
	if *announce != "" && !*coordinator {
		advertised := *announceAddr
		if advertised == "" {
			advertised = ns.Addr()
		}
		beatQuit = make(chan struct{})
		go announceLoop(*announce, advertised, *announceWeight, *maxLine, *beatEvery, beatQuit)
		fmt.Printf("scansd announcing %s to coordinator %s every %v\n", advertised, *announce, *beatEvery)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	fmt.Println("scansd: draining...")
	if beatQuit != nil {
		close(beatQuit)
	}
	ns.Close()
	if coord != nil {
		fmt.Println("scansd coordinator:", coord.Stats())
	} else {
		fmt.Println("scansd:", ns.Stats())
	}
	if faults != nil {
		fmt.Println("scansd:", faults)
	}
}

// announceLoop heartbeats this worker into a coordinator until quit:
// dial (lazily, redialing after any error), send one heartbeat per
// interval. The coordinator admits us on the first beat it hears and
// ejects us -heartbeat-ttl after the last, so joining and leaving the
// fleet are both just this loop's lifecycle.
func announceLoop(coordAddr, selfAddr string, weight float64, maxLine int, every time.Duration, quit chan struct{}) {
	if every <= 0 {
		every = 500 * time.Millisecond
	}
	var cli *serve.Client
	defer func() {
		if cli != nil {
			cli.Close()
		}
	}()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		if cli == nil {
			c, err := serve.DialMaxLineProto(coordAddr, 0, serve.ProtoBin)
			if err == nil {
				cli = c
			}
		}
		if cli != nil {
			ctx, cancel := context.WithTimeout(context.Background(), every)
			err := cli.Heartbeat(ctx, selfAddr, weight, serve.ProtoBin, maxLine)
			cancel()
			if err != nil {
				cli.Close()
				cli = nil
			}
		}
		select {
		case <-quit:
			return
		case <-tick.C:
		}
	}
}

// splitNonEmpty splits a comma-separated list, trimming whitespace and
// dropping empty entries.
func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseWeights parses -worker-weights into n positive floats; empty
// means equal weights (nil).
func parseWeights(s string, n int) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := splitNonEmpty(s)
	if len(parts) != n {
		return nil, fmt.Errorf("-worker-weights has %d entries for %d workers", len(parts), n)
	}
	ws := make([]float64, len(parts))
	for i, p := range parts {
		w, err := strconv.ParseFloat(p, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad -worker-weights entry %q (want a positive number)", p)
		}
		ws[i] = w
	}
	return ws, nil
}

// parseChaos builds a fault set from "name:prob[:duration],..." — nil
// when the spec is empty (chaos off, zero overhead).
func parseChaos(spec string, seed int64) (*fault.Set, error) {
	if spec == "" {
		return nil, nil
	}
	set := fault.New(seed)
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("bad -chaos entry %q (want name:prob[:duration])", entry)
		}
		prob, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("bad -chaos probability in %q", entry)
		}
		if len(parts) == 3 {
			d, err := time.ParseDuration(parts[2])
			if err != nil {
				return nil, fmt.Errorf("bad -chaos duration in %q: %v", entry, err)
			}
			set.ArmSleep(parts[0], prob, d)
		} else {
			set.Arm(parts[0], prob)
		}
	}
	return set, nil
}
