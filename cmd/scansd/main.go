// Command scansd is the scan service daemon: a TCP front end over
// internal/serve's batching server. Clients speak newline-delimited
// JSON (one request per line, one response per line, matched by id):
//
//	{"id":1,"op":"sum","kind":"exclusive","dir":"forward","data":[2,1,2]}
//	{"id":1,"result":[0,2,3]}
//
// Every connection's requests fuse into the same batches, so N remote
// clients issuing small scans cost one segmented kernel pass per
// batching window, not N passes. cmd/scanload is the matching load
// generator.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scans/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7187", "TCP listen address")
		maxElems  = flag.Int("max-batch-elems", 1<<16, "flush a batch at this many fused elements")
		maxReqs   = flag.Int("max-batch-requests", 4096, "flush a batch at this many requests (1 = unfused)")
		maxWait   = flag.Duration("max-wait", 100*time.Microsecond, "batching window: how long the first request waits for company")
		queue     = flag.Int("queue", 4096, "bounded submission queue (full queue rejects with an overload error)")
		workers   = flag.Int("workers", 0, "goroutines per segmented kernel pass (0 = GOMAXPROCS)")
		executors = flag.Int("executors", 0, "batch executor pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	ns, err := serve.Listen(*addr, serve.Config{
		MaxBatchElems:    *maxElems,
		MaxBatchRequests: *maxReqs,
		MaxWait:          *maxWait,
		QueueLimit:       *queue,
		Workers:          *workers,
		Executors:        *executors,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "scansd:", err)
		os.Exit(1)
	}
	fmt.Println("scansd listening on", ns.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	fmt.Println("scansd: draining...")
	ns.Close()
	fmt.Println("scansd:", ns.Stats())
}
