// Command scansd is the scan service daemon: a TCP front end over
// internal/serve's batching server. Clients speak newline-delimited
// JSON (one request per line, one response per line, matched by id):
//
//	{"id":1,"op":"sum","kind":"exclusive","dir":"forward","data":[2,1,2]}
//	{"id":1,"result":[0,2,3]}
//
// Every connection's requests fuse into the same batches, so N remote
// clients issuing small scans cost one segmented kernel pass per
// batching window, not N passes. cmd/scanload is the matching load
// generator.
//
// Error responses carry a machine-readable "code" ("overloaded",
// "shed", "deadline", "internal", ...) so clients can branch retry vs
// give-up; requests may carry "timeout_ms" (the server drops them
// unexecuted once expired) and "tenant" (fair-share batching domain,
// defaulting to the connection).
//
// Long vectors stream: "type":"stream_open" / "stream_chunk" /
// "stream_close" messages push one logical vector through the batcher
// chunk by chunk, the server carrying the running prefix across chunks
// (DESIGN.md §5). -max-streams and -stream-ttl bound the per-connection
// session state. The -chaos flag arms fault-injection
// points for soak testing the failure paths: a comma-separated list of
// name:probability[:duration] triples, e.g.
//
//	scansd -chaos 'kernel.panic:0.001,kernel.slow:0.01:5ms,conn.drop:0.002'
//
// over the points kernel.slow, kernel.panic, conn.drop,
// conn.partialwrite.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"scans/internal/fault"
	"scans/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7187", "TCP listen address")
		maxElems  = flag.Int("max-batch-elems", 1<<16, "flush a batch at this many fused elements")
		maxReqs   = flag.Int("max-batch-requests", 4096, "flush a batch at this many requests (1 = unfused)")
		maxWait   = flag.Duration("max-wait", 100*time.Microsecond, "batching window: how long the first request waits for company")
		queue     = flag.Int("queue", 4096, "bounded submission queue (full queue rejects with an overload error)")
		queueAge  = flag.Duration("queue-age", time.Second, "shed queued requests older than this before execution (0 = never shed)")
		workers   = flag.Int("workers", 0, "goroutines per segmented kernel pass (0 = GOMAXPROCS)")
		executors = flag.Int("executors", 0, "batch executor pool size (0 = GOMAXPROCS)")

		maxConns  = flag.Int("max-conns", 0, "max simultaneous client connections (0 = unlimited)")
		perConn   = flag.Int("per-conn-inflight", 0, "per-connection in-flight request cap (0 = unlimited)")
		idle      = flag.Duration("idle-timeout", 2*time.Minute, "close connections idle this long (0 = never)")
		wtimeout  = flag.Duration("write-timeout", 30*time.Second, "per-response write deadline")
		maxLine   = flag.Int("max-line-bytes", 16<<20, "reject request lines longer than this")
		maxStream = flag.Int("max-streams", 64, "per-connection open streaming session cap (-1 = disable streaming)")
		streamTTL = flag.Duration("stream-ttl", 2*time.Minute, "expire streaming sessions idle this long (-1s = never)")
		chaosSpec = flag.String("chaos", "", "arm fault points: name:prob[:duration],... (see package doc)")
		chaosSeed = flag.Int64("chaos-seed", 1, "fault-injection RNG seed")
	)
	flag.Parse()

	faults, err := parseChaos(*chaosSpec, *chaosSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scansd:", err)
		os.Exit(1)
	}

	ns, err := serve.ListenNet(*addr, serve.Config{
		MaxBatchElems:    *maxElems,
		MaxBatchRequests: *maxReqs,
		MaxWait:          *maxWait,
		QueueLimit:       *queue,
		QueueAgeLimit:    *queueAge,
		Workers:          *workers,
		Executors:        *executors,
		Faults:           faults,
	}, serve.NetConfig{
		MaxLineBytes:    *maxLine,
		MaxConns:        *maxConns,
		PerConnInflight: *perConn,
		IdleTimeout:     *idle,
		WriteTimeout:    *wtimeout,
		MaxStreams:      *maxStream,
		StreamIdleTTL:   *streamTTL,
		Faults:          faults,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "scansd:", err)
		os.Exit(1)
	}
	fmt.Println("scansd listening on", ns.Addr())
	if faults != nil {
		fmt.Println("scansd: CHAOS ARMED", faults)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	fmt.Println("scansd: draining...")
	ns.Close()
	fmt.Println("scansd:", ns.Stats())
	if faults != nil {
		fmt.Println("scansd:", faults)
	}
}

// parseChaos builds a fault set from "name:prob[:duration],..." — nil
// when the spec is empty (chaos off, zero overhead).
func parseChaos(spec string, seed int64) (*fault.Set, error) {
	if spec == "" {
		return nil, nil
	}
	set := fault.New(seed)
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("bad -chaos entry %q (want name:prob[:duration])", entry)
		}
		prob, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("bad -chaos probability in %q", entry)
		}
		if len(parts) == 3 {
			d, err := time.ParseDuration(parts[2])
			if err != nil {
				return nil, fmt.Errorf("bad -chaos duration in %q: %v", entry, err)
			}
			set.ArmSleep(parts[0], prob, d)
		} else {
			set.Arm(parts[0], prob)
		}
	}
	return set, nil
}
