// Command scanvm assembles and runs a program for the PARIS-style
// vector VM against the step-counted scan-model machine.
//
//	scanvm -in 'v0=2,1,2,3,5,8,13,21' -in 'f0=T,F,T,F,F,F,T,F' prog.svm
//	echo '+scan v1 v0' | scanvm -in 'v0=1,2,3'
//
// Output: every register the program wrote, plus the program-step count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"scans/internal/core"
	"scans/internal/vm"
)

type inputs []string

func (i *inputs) String() string     { return strings.Join(*i, " ") }
func (i *inputs) Set(s string) error { *i = append(*i, s); return nil }

func main() {
	var ins inputs
	flag.Var(&ins, "in", "input register, e.g. v0=1,2,3 or f0=T,F,T (repeatable)")
	flag.Parse()

	src, err := readProgram(flag.Args())
	if err != nil {
		fatal(err)
	}
	prog, err := vm.Parse(src)
	if err != nil {
		fatal(err)
	}
	machine := vm.New(core.New())
	written := map[string]bool{}
	for _, in := range ins {
		name, vals, ok := strings.Cut(in, "=")
		if !ok {
			fatal(fmt.Errorf("bad -in %q: want name=v1,v2,...", in))
		}
		reg, err := strconv.Atoi(name[1:])
		if err != nil || len(name) < 2 {
			fatal(fmt.Errorf("bad register name %q", name))
		}
		switch name[0] {
		case 'v':
			var v []int
			for _, f := range strings.Split(vals, ",") {
				x, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					fatal(fmt.Errorf("bad value %q in %q", f, in))
				}
				v = append(v, x)
			}
			machine.SetV(reg, v)
		case 'f':
			var fv []bool
			for _, f := range strings.Split(vals, ",") {
				switch strings.TrimSpace(strings.ToUpper(f)) {
				case "T", "1", "TRUE":
					fv = append(fv, true)
				case "F", "0", "FALSE":
					fv = append(fv, false)
				default:
					fatal(fmt.Errorf("bad flag %q in %q", f, in))
				}
			}
			machine.SetF(reg, fv)
		default:
			fatal(fmt.Errorf("register %q must start with v or f", name))
		}
		written[name] = true
	}
	machine.Run(prog)
	printRegisters(machine, prog)
	fmt.Printf("steps: %d\n", machine.Steps())
}

func readProgram(args []string) (string, error) {
	if len(args) == 0 {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(args[0])
	return string(b), err
}

func printRegisters(machine *vm.VM, prog vm.Program) {
	type reg struct {
		kind byte
		n    int
	}
	seen := map[reg]bool{}
	var regs []reg
	note := func(kind byte, n int) {
		r := reg{kind, n}
		if !seen[r] {
			seen[r] = true
			regs = append(regs, r)
		}
	}
	for _, in := range prog {
		// Destination register kind follows the opcode shape; reuse the
		// formatter to avoid duplicating the table.
		line := strings.Fields(vm.Format(vm.Program{in}))
		if len(line) >= 2 {
			n, _ := strconv.Atoi(line[1][1:])
			note(line[1][0], n)
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].kind != regs[j].kind {
			return regs[i].kind > regs[j].kind // v before f
		}
		return regs[i].n < regs[j].n
	})
	for _, r := range regs {
		if r.kind == 'v' {
			fmt.Printf("v%d = %v\n", r.n, machine.V(r.n))
		} else {
			fmt.Printf("f%d = %s\n", r.n, flagString(machine.F(r.n)))
		}
	}
}

func flagString(f []bool) string {
	parts := make([]string, len(f))
	for i, b := range f {
		if b {
			parts[i] = "T"
		} else {
			parts[i] = "F"
		}
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scanvm:", err)
	os.Exit(2)
}
