// Command scantables regenerates the tables of Blelloch's "Scans as
// Primitive Parallel Operations" from this repository's simulators:
//
//	scantables            # all tables at default scales
//	scantables -table 2   # one table
//	scantables -n 4096    # problem size for Tables 1/3/5
//	scantables -procs 65536 -bits 32   # hardware scale for Tables 2/4
package main

import (
	"flag"
	"fmt"
	"os"

	"scans/internal/tables"
)

func main() {
	table := flag.Int("table", 0, "table to print (1-5); 0 = all")
	n := flag.Int("n", 1024, "problem size for tables 1, 3, 5")
	procs := flag.Int("procs", 1<<16, "processor count for tables 2 and 4 (power of two)")
	bits := flag.Int("bits", 32, "word size for table 2")
	sortBits := flag.Int("sortbits", 16, "key size for table 4")
	seed := flag.Int64("seed", 1987, "workload seed")
	flag.Parse()

	sizes := []int{*n / 4, *n, *n * 4}
	print1 := func() { fmt.Print(tables.FormatTable1(sizes, tables.Table1(sizes))) }
	print2 := func() { fmt.Print(tables.FormatTable2(tables.Table2(*procs, *bits, *seed))) }
	print3 := func() { fmt.Print(tables.FormatTable3(tables.Table3(*n, *seed))) }
	print4 := func() { fmt.Print(tables.FormatTable4(tables.Table4(*procs, *sortBits, *seed))) }
	print5 := func() { fmt.Print(tables.FormatTable5(tables.Table5(*n, *seed))) }

	switch *table {
	case 0:
		for i, f := range []func(){print1, print2, print3, print4, print5} {
			if i > 0 {
				fmt.Println()
			}
			f()
		}
	case 1:
		print1()
	case 2:
		print2()
	case 3:
		print3()
	case 4:
		print4()
	case 5:
		print5()
	default:
		fmt.Fprintf(os.Stderr, "scantables: no table %d (want 1-5)\n", *table)
		os.Exit(2)
	}
}
