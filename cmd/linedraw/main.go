// Command linedraw renders lines with the paper's O(1)-step parallel
// line-drawing routine (§2.4.1) and prints the raster as ASCII art. With
// no arguments it reproduces Figure 9's three lines; otherwise each
// argument is a line "x1,y1,x2,y2".
//
//	linedraw
//	linedraw 0,0,20,10 20,0,0,10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scans/internal/algo/lines"
	"scans/internal/core"
)

func main() {
	flag.Parse()
	ls := []lines.Line{
		{From: lines.Point{X: 11, Y: 2}, To: lines.Point{X: 23, Y: 14}},
		{From: lines.Point{X: 2, Y: 13}, To: lines.Point{X: 13, Y: 8}},
		{From: lines.Point{X: 16, Y: 4}, To: lines.Point{X: 31, Y: 4}},
	}
	if flag.NArg() > 0 {
		ls = nil
		for _, arg := range flag.Args() {
			var l lines.Line
			if _, err := fmt.Sscanf(arg, "%d,%d,%d,%d", &l.From.X, &l.From.Y, &l.To.X, &l.To.Y); err != nil {
				fmt.Fprintf(os.Stderr, "linedraw: bad line %q: want x1,y1,x2,y2\n", arg)
				os.Exit(2)
			}
			ls = append(ls, l)
		}
	}
	m := core.New()
	r := lines.Draw(m, ls)
	w, h := 1, 1
	for _, p := range r.Pixels {
		if p.X+1 > w {
			w = p.X + 1
		}
		if p.Y+1 > h {
			h = p.Y + 1
		}
	}
	grid := lines.Raster(m, r, w, h)
	var b strings.Builder
	for y := h - 1; y >= 0; y-- {
		for x := 0; x < w; x++ {
			if grid[y*w+x] {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Print(b.String())
	fmt.Printf("%d lines, %d pixels, %d program steps\n", len(ls), len(r.Pixels), m.Steps())
}
