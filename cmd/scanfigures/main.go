// Command scanfigures reproduces the worked-example figures (1-16) of
// Blelloch's "Scans as Primitive Parallel Operations", running the
// paper's exact inputs through this repository's implementations:
//
//	scanfigures           # all figures
//	scanfigures -fig 7    # one figure
package main

import (
	"flag"
	"fmt"
	"os"

	"scans/internal/figures"
)

func main() {
	fig := flag.Int("fig", 0, "figure to print (1-16); 0 = all")
	flag.Parse()
	if *fig == 0 {
		fmt.Print(figures.All())
		return
	}
	if *fig < 1 || *fig > 16 {
		fmt.Fprintf(os.Stderr, "scanfigures: no figure %d (want 1-16)\n", *fig)
		os.Exit(2)
	}
	fmt.Print(figures.Figure(*fig))
}
