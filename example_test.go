package scans_test

import (
	"fmt"

	"scans"
)

// The paper's §2.1 scan example.
func ExampleMachine_PlusScan() {
	m := scans.NewMachine()
	a := []int{2, 1, 2, 3, 5, 8, 13, 21}
	out := make([]int, len(a))
	total := m.PlusScan(out, a)
	fmt.Println(out, total)
	// Output: [0 2 3 5 8 13 21 34] 55
}

// The paper's Figure 4 segmented scan.
func ExampleMachine_SegPlusScan() {
	m := scans.NewMachine()
	a := []int{5, 1, 3, 4, 3, 9, 2, 6}
	flags := []bool{true, false, true, false, false, false, true, false}
	out := make([]int, len(a))
	m.SegPlusScan(out, a, flags)
	fmt.Println(out)
	// Output: [0 5 0 3 7 10 0 2]
}

// The paper's Figure 1 enumerate.
func ExampleMachine_Enumerate() {
	m := scans.NewMachine()
	flags := []bool{true, false, false, true, false, true, true, false}
	out := make([]int, len(flags))
	count := m.Enumerate(out, flags)
	fmt.Println(out, count)
	// Output: [0 1 1 1 2 2 3 4] 4
}

// The split radix sort of §2.2.1, O(1) steps per key bit.
func ExampleMachine_RadixSort() {
	m := scans.NewMachine()
	fmt.Println(m.RadixSort([]int{5, 7, 3, 1, 4, 2, 7, 2}))
	fmt.Println(m.Steps(), "program steps")
	// Output:
	// [1 2 2 3 4 5 7 7]
	// 28 program steps
}

// The halving merge of §2.5.1 on the paper's Figure 12 input.
func ExampleMachine_Merge() {
	m := scans.NewMachine()
	merged := m.Merge([]int{1, 7, 10, 13, 15, 20}, []int{3, 4, 9, 22, 23, 26})
	fmt.Println(merged)
	// Output: [1 3 4 7 9 10 13 15 20 22 23 26]
}

// Processor allocation (§2.4, Figure 8).
func ExampleMachine_Allocate() {
	m := scans.NewMachine()
	counts := []int{4, 1, 3}
	alloc := m.Allocate(counts)
	out := make([]string, alloc.Total)
	scans.Distribute(m, alloc, out, []string{"v1", "v2", "v3"}, counts)
	fmt.Println(alloc.HPointers, out)
	// Output: [0 4 5] [v1 v1 v1 v1 v2 v3 v3 v3]
}

// Run-length coding, a two-primitive round trip.
func ExampleMachine_RLEEncode() {
	m := scans.NewMachine()
	runs := m.RLEEncode([]int{7, 7, 7, 2, 9, 9})
	fmt.Println(runs)
	fmt.Println(m.RLEDecode(runs))
	// Output:
	// [{7 3} {2 1} {9 2}]
	// [7 7 7 2 9 9]
}

// Frontier-at-a-time breadth-first search.
func ExampleMachine_BFS() {
	m := scans.NewMachine()
	edges := []scans.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}}
	fmt.Println(m.BFS(5, edges, 0))
	// Output: [0 1 1 2 -1]
}

// The cost-model comparison that is the paper's whole argument.
func ExampleWithModel() {
	big := make([]int, 1<<20)
	out := make([]int, len(big))

	scanModel := scans.NewMachine()
	scanModel.PlusScan(out, big)

	erew := scans.NewMachine(scans.WithModel(scans.ModelEREW))
	erew.PlusScan(out, big)

	fmt.Printf("one +-scan over 2^20 elements: scan model %d step, EREW %d steps\n",
		scanModel.Steps(), erew.Steps())
	// Output: one +-scan over 2^20 elements: scan model 1 step, EREW 40 steps
}
